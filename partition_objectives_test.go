package vpindex_test

import (
	"errors"
	"fmt"
	"math"
	"math/rand"
	"os"
	"path/filepath"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	vpindex "repro"
	"repro/internal/model"
)

// mixSample synthesizes the workload DVA cannot help with: directions
// uniform over the circle, speeds bimodal (slow walkers, fast highway).
func mixSample(n int, seed int64) []vpindex.Vec2 {
	rng := rand.New(rand.NewSource(seed))
	out := make([]vpindex.Vec2, n)
	for i := range out {
		s := 80 + rng.Float64()*40
		if rng.Float64() < 0.6 {
			s = 1 + rng.Float64()*2
		}
		ang := rng.Float64() * 2 * math.Pi
		out[i] = vpindex.V(s*math.Cos(ang), s*math.Sin(ang))
	}
	return out
}

func mixObject(id int, rng *rand.Rand) vpindex.Object {
	return vpindex.Object{
		ID:  vpindex.ObjectID(id),
		Pos: vpindex.V(rng.Float64()*20000, rng.Float64()*20000),
		Vel: mixSample(1, rng.Int63())[0],
		T:   0,
	}
}

// oracleCheck drives the store and a freshly seeded BruteForce mirror
// through all three range-query kinds plus kNN and requires exact agreement.
func oracleCheck(t *testing.T, store *vpindex.Store, live map[vpindex.ObjectID]vpindex.Object, now float64, stage string) {
	t.Helper()
	oracle := model.NewBruteForce()
	for _, o := range live {
		if err := oracle.Insert(o); err != nil {
			t.Fatal(err)
		}
	}
	if store.Len() != oracle.Len() {
		t.Fatalf("%s: len %d vs oracle %d", stage, store.Len(), oracle.Len())
	}
	rng := rand.New(rand.NewSource(91))
	for i := 0; i < 10; i++ {
		queries := []vpindex.RangeQuery{
			vpindex.SliceQuery(vpindex.Circle{C: vpindex.V(rng.Float64()*20000, rng.Float64()*20000), R: 3000}, now, now+15),
			vpindex.IntervalQuery(vpindex.R(1000, 1000, 12000, 12000), now, now+5, now+25),
			vpindex.MovingQuery(vpindex.R(0, 0, 7000, 7000), vpindex.V(20, -10), now, now, now+30),
		}
		for _, q := range queries {
			got, err := store.Search(q)
			if err != nil {
				t.Fatalf("%s: %v", stage, err)
			}
			want, _ := oracle.Search(q)
			got, want = sortedIDs(got), sortedIDs(want)
			if fmt.Sprint(got) != fmt.Sprint(want) {
				t.Fatalf("%s %v: got %v want %v", stage, q.Kind, got, want)
			}
		}
	}
	kq := vpindex.KNNQuery{Center: vpindex.V(10000, 10000), K: 8, Now: now, T: now + 20}
	got, err := store.SearchKNN(kq)
	if err != nil {
		t.Fatal(err)
	}
	want, _ := oracle.SearchKNN(kq)
	if len(got) != len(want) {
		t.Fatalf("%s: kNN %d vs %d results", stage, len(got), len(want))
	}
	for i := range got {
		if d := got[i].Dist - want[i].Dist; d > 1e-6 || d < -1e-6 {
			t.Fatalf("%s: kNN %d dist %g vs %g", stage, i, got[i].Dist, want[i].Dist)
		}
	}
}

// TestStoreFixedObjectives pins WithPartitioner: the chosen objective runs
// every analysis, the partition layout matches it, and queries stay
// oracle-exact under each layout.
func TestStoreFixedObjectives(t *testing.T) {
	for _, tc := range []struct {
		obj   vpindex.PartitionObjective
		parts int
	}{
		{vpindex.ObjectiveSpeed, 2},
		{vpindex.ObjectiveNone, 1},
		{vpindex.ObjectiveDVA, 3},
	} {
		t.Run(tc.obj.String(), func(t *testing.T) {
			sample := testSample(800, 11)
			store, err := vpindex.Open(
				vpindex.WithKind(vpindex.Bx),
				vpindex.WithDomain(vpindex.R(0, 0, 20000, 20000)),
				vpindex.WithBufferPages(30),
				vpindex.WithShards(2),
				vpindex.WithPartitioner(tc.obj),
				vpindex.WithVelocitySample(sample),
				vpindex.WithSeed(5),
			)
			if err != nil {
				t.Fatal(err)
			}
			if !store.Partitioned() {
				t.Fatal("upfront sample did not partition the store")
			}
			an, ok := store.Analysis()
			if !ok || an.Kind != tc.obj {
				t.Fatalf("analysis kind %v, want %v", an.Kind, tc.obj)
			}
			if err := an.Validate(); err != nil {
				t.Fatal(err)
			}
			if got := len(store.Partitions()); got != tc.parts {
				t.Fatalf("%d partitions, want %d", got, tc.parts)
			}
			rng := rand.New(rand.NewSource(31))
			live := map[vpindex.ObjectID]vpindex.Object{}
			for i := 1; i <= 400; i++ {
				o := testObject(i, rng)
				if err := store.Report(o); err != nil {
					t.Fatal(err)
				}
				live[o.ID] = o
			}
			for id := vpindex.ObjectID(3); id <= 400; id += 11 {
				if err := store.Remove(id); err != nil {
					t.Fatal(err)
				}
				delete(live, id)
			}
			oracleCheck(t, store, live, 0, tc.obj.String())
		})
	}

	// WithPartitioner alone implies velocity partitioning.
	s, err := vpindex.Open(vpindex.WithPartitioner(vpindex.ObjectiveSpeed))
	if err != nil {
		t.Fatal(err)
	}
	if _, target := s.BootstrapProgress(); target == 0 {
		t.Fatal("WithPartitioner alone should enable the VP bootstrap")
	}
}

// TestStoreAutoObjectiveChooser pins WithPartitionerAuto: on an axis-bundle
// workload the chooser installs DVA partitions, on an isotropic speed
// mixture it installs speed bands, and the query-shape log feeds it real
// workload evidence.
func TestStoreAutoObjectiveChooser(t *testing.T) {
	open := func(sample []vpindex.Vec2) *vpindex.Store {
		t.Helper()
		s, err := vpindex.Open(
			vpindex.WithKind(vpindex.Bx),
			vpindex.WithDomain(vpindex.R(0, 0, 20000, 20000)),
			vpindex.WithBufferPages(30),
			vpindex.WithShards(2),
			vpindex.WithPartitionerAuto(),
			vpindex.WithVelocitySample(sample),
			vpindex.WithSeed(5),
		)
		if err != nil {
			t.Fatal(err)
		}
		return s
	}

	axis := open(axisSample(800, 0, 12))
	if an, _ := axis.Analysis(); an.Kind != vpindex.ObjectiveDVA {
		t.Fatalf("axis bundle chose %v, want dva", an.Kind)
	}
	mixed := open(mixSample(800, 13))
	if an, _ := mixed.Analysis(); an.Kind != vpindex.ObjectiveSpeed {
		t.Fatalf("speed mixture chose %v, want speed", an.Kind)
	}

	// Queries populate the bounded shape log the cost model reads.
	if mixed.QueryLogSize() != 0 {
		t.Fatal("query log should start empty")
	}
	for i := 0; i < 40; i++ {
		q := vpindex.SliceQuery(vpindex.Circle{C: vpindex.V(5000, 5000), R: 1500}, 0, 10)
		if _, err := mixed.Search(q); err != nil {
			t.Fatal(err)
		}
		if _, err := mixed.SearchKNN(vpindex.KNNQuery{Center: vpindex.V(8000, 8000), K: 3, Now: 0, T: 5}); err != nil {
			t.Fatal(err)
		}
	}
	if n := mixed.QueryLogSize(); n != 80 {
		t.Fatalf("query log holds %d shapes, want 80", n)
	}

	// A chooser-driven repartition over unchanged traffic keeps the layout:
	// the stickiness multiplier stops near-ties from flapping.
	if err := mixed.Repartition(); err != nil {
		t.Fatal(err)
	}
	if an, _ := mixed.Analysis(); an.Kind != vpindex.ObjectiveSpeed {
		t.Fatalf("repartition flapped to %v", an.Kind)
	}
}

// TestStoreRepartitionTo drives the manual objective ladder on a live store
// — DVA -> speed -> none -> DVA — checking the installed layout, the
// maintenance events, and oracle-exact queries after every swap.
func TestStoreRepartitionTo(t *testing.T) {
	var (
		evMu sync.Mutex
		evs  []vpindex.MaintenanceEvent
	)
	store, err := vpindex.Open(
		vpindex.WithKind(vpindex.Bx),
		vpindex.WithDomain(vpindex.R(0, 0, 20000, 20000)),
		vpindex.WithBufferPages(30),
		vpindex.WithShards(2),
		vpindex.WithVelocityPartitioning(2),
		vpindex.WithVelocitySample(mixSample(600, 21)),
		vpindex.WithMaintenanceHook(func(ev vpindex.MaintenanceEvent) {
			evMu.Lock()
			evs = append(evs, ev)
			evMu.Unlock()
		}),
		vpindex.WithSeed(5),
	)
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(77))
	live := map[vpindex.ObjectID]vpindex.Object{}
	for i := 1; i <= 500; i++ {
		o := mixObject(i, rng)
		if err := store.Report(o); err != nil {
			t.Fatal(err)
		}
		live[o.ID] = o
	}
	for _, obj := range []vpindex.PartitionObjective{
		vpindex.ObjectiveSpeed, vpindex.ObjectiveNone, vpindex.ObjectiveDVA,
	} {
		if err := store.RepartitionTo(obj); err != nil {
			t.Fatalf("RepartitionTo(%v): %v", obj, err)
		}
		an, ok := store.Analysis()
		if !ok || an.Kind != obj {
			t.Fatalf("after RepartitionTo(%v): analysis kind %v", obj, an.Kind)
		}
		if err := an.Validate(); err != nil {
			t.Fatal(err)
		}
		oracleCheck(t, store, live, 0, "repartition-to-"+obj.String())
	}
	if n := store.Stats().Repartitions; n != 3 {
		t.Fatalf("stats count %d repartitions, want 3", n)
	}
	evMu.Lock()
	defer evMu.Unlock()
	var swaps []vpindex.PartitionObjective
	for _, ev := range evs {
		if ev.Op == vpindex.MaintRepartition && ev.Swapped {
			swaps = append(swaps, ev.Objective)
		}
	}
	want := []vpindex.PartitionObjective{vpindex.ObjectiveSpeed, vpindex.ObjectiveNone, vpindex.ObjectiveDVA}
	if fmt.Sprint(swaps) != fmt.Sprint(want) {
		t.Fatalf("swap events carried objectives %v, want %v", swaps, want)
	}
}

// copyDataDir clones a durable fixture into a scratch dir, since Open
// mutates its data directory.
func copyDataDir(t *testing.T, src, dst string) {
	t.Helper()
	entries, err := os.ReadDir(src)
	if err != nil {
		t.Fatal(err)
	}
	for _, e := range entries {
		sp, dp := filepath.Join(src, e.Name()), filepath.Join(dst, e.Name())
		if e.IsDir() {
			if err := os.MkdirAll(dp, 0o755); err != nil {
				t.Fatal(err)
			}
			copyDataDir(t, sp, dp)
			continue
		}
		b, err := os.ReadFile(sp)
		if err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(dp, b, 0o644); err != nil {
			t.Fatal(err)
		}
	}
}

// TestPreRefactorCheckpointRecovery opens a data directory checkpointed by
// the pre-Partitioner build (legacy analysis encoding, implicit outlier
// partition) and requires a clean recovery: all surviving objects, the DVA
// partition layout, the standing subscription, and a store that keeps
// accepting work.
func TestPreRefactorCheckpointRecovery(t *testing.T) {
	dir := t.TempDir()
	copyDataDir(t, filepath.Join("internal", "testdata", "prerefactor", "datadir"), dir)

	store, err := vpindex.Open(
		vpindex.WithKind(vpindex.Bx),
		vpindex.WithDomain(vpindex.R(0, 0, 20000, 20000)),
		vpindex.WithBufferPages(30),
		vpindex.WithShards(2),
		vpindex.WithVelocityPartitioning(2),
		vpindex.WithSeed(7),
		vpindex.WithDataDir(dir),
	)
	if err != nil {
		t.Fatalf("opening pre-refactor data dir: %v", err)
	}
	defer store.Close()

	// 300 checkpointed + 50 WAL-tail reports - 1 WAL-tail remove.
	if store.Len() != 349 {
		t.Fatalf("recovered %d objects, want 349", store.Len())
	}
	if !store.Partitioned() {
		t.Fatal("recovered store is not partitioned")
	}
	an, ok := store.Analysis()
	if !ok || an.Kind != vpindex.ObjectiveDVA {
		t.Fatalf("recovered analysis kind %v, want dva", an.Kind)
	}
	if err := an.Validate(); err != nil {
		t.Fatalf("recovered legacy analysis invalid: %v", err)
	}
	if len(an.Frames) != 3 {
		t.Fatalf("recovered %d frames, want 2 DVAs + outlier", len(an.Frames))
	}
	if _, ok := store.Get(7); ok {
		t.Fatal("object 7 was removed in the WAL tail but recovered")
	}
	if _, ok := store.Get(333); !ok {
		t.Fatal("WAL-tail object 333 missing after recovery")
	}
	if store.NumSubscriptions() != 1 {
		t.Fatalf("recovered %d subscriptions, want 1", store.NumSubscriptions())
	}
	ids, err := store.Search(vpindex.RectSliceQuery(vpindex.R(-1e6, -1e6, 1e6, 1e6), 4, 4))
	if err != nil {
		t.Fatal(err)
	}
	if len(ids) != 349 {
		t.Fatalf("whole-domain search found %d of 349", len(ids))
	}
	// The recovered store keeps serving writes and objective swaps.
	if err := store.Report(vpindex.Object{ID: 9000, Pos: vpindex.V(5000, 5000), Vel: vpindex.V(45, 1), T: 4}); err != nil {
		t.Fatal(err)
	}
	if err := store.RepartitionTo(vpindex.ObjectiveSpeed); err != nil {
		t.Fatal(err)
	}
	if an, _ := store.Analysis(); an.Kind != vpindex.ObjectiveSpeed {
		t.Fatalf("post-recovery swap left kind %v", an.Kind)
	}
	if store.Len() != 350 {
		t.Fatalf("len %d after post-recovery report", store.Len())
	}
}

// TestStoreCrossObjectiveSwapStormOracle is the refactor's strongest
// concurrency oracle: writers and readers hammer a sharded store while a
// maintenance goroutine forces the partitions through the full objective
// ladder (DVA -> speed -> none -> DVA) mid-traffic. After the storm the
// merged writer states seed a BruteForce mirror and the store must agree
// exactly on Len, Get, Search, and kNN distances.
func TestStoreCrossObjectiveSwapStormOracle(t *testing.T) {
	const (
		writers   = 4
		readers   = 2
		perWriter = 400
		idsPer    = 500
	)
	store, err := vpindex.Open(
		vpindex.WithKind(vpindex.Bx),
		vpindex.WithDomain(vpindex.R(0, 0, 20000, 20000)),
		vpindex.WithBufferPages(30),
		vpindex.WithShards(4),
		vpindex.WithVelocityPartitioning(2),
		vpindex.WithVelocitySample(testSample(800, 11)),
		vpindex.WithTauRefreshInterval(250),
		vpindex.WithSeed(6),
	)
	if err != nil {
		t.Fatal(err)
	}

	var (
		written atomic.Int64
		wg      sync.WaitGroup
	)
	final := make([]map[vpindex.ObjectID]*vpindex.Object, writers)
	errs := make(chan error, writers+readers+1)

	for w := 0; w < writers; w++ {
		final[w] = make(map[vpindex.ObjectID]*vpindex.Object)
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			rng := rand.New(rand.NewSource(int64(700 + w)))
			base := w * idsPer
			for i := 0; i < perWriter; i++ {
				id := base + 1 + rng.Intn(idsPer)
				o := testObject(id, rng)
				o.T = float64(i) / 8
				if i%9 == 8 {
					err := store.Remove(o.ID)
					if err != nil && !errors.Is(err, vpindex.ErrNotFound) {
						errs <- fmt.Errorf("writer %d remove: %w", w, err)
						return
					}
					if err == nil {
						delete(final[w], o.ID)
					}
					continue
				}
				if err := store.Report(o); err != nil {
					errs <- fmt.Errorf("writer %d report: %w", w, err)
					return
				}
				final[w][o.ID] = &o
				written.Add(1)
			}
		}(w)
	}
	for r := 0; r < readers; r++ {
		wg.Add(1)
		go func(r int) {
			defer wg.Done()
			rng := rand.New(rand.NewSource(int64(800 + r)))
			for i := 0; i < 200; i++ {
				now := float64(i) / 4
				q := vpindex.SliceQuery(vpindex.Circle{
					C: vpindex.V(rng.Float64()*20000, rng.Float64()*20000), R: 3000,
				}, now, now+10)
				if _, err := store.Search(q); err != nil {
					errs <- fmt.Errorf("reader %d search: %w", r, err)
					return
				}
				if _, err := store.SearchKNN(vpindex.KNNQuery{
					Center: vpindex.V(rng.Float64()*20000, rng.Float64()*20000),
					K:      5, Now: now, T: now + 10,
				}); err != nil {
					errs <- fmt.Errorf("reader %d knn: %w", r, err)
					return
				}
				store.Get(vpindex.ObjectID(1 + rng.Intn(writers*idsPer)))
				store.Len()
				store.Partitions()
				store.QueryLogSize()
			}
		}(r)
	}
	// The maintenance goroutine walks the objective ladder at roughly one
	// quarter, one half, and three quarters of the write volume, racing the
	// writers, readers, and tau refreshes.
	wg.Add(1)
	go func() {
		defer wg.Done()
		total := int64(writers * perWriter)
		ladder := []vpindex.PartitionObjective{
			vpindex.ObjectiveSpeed, vpindex.ObjectiveNone, vpindex.ObjectiveDVA,
		}
		for step, obj := range ladder {
			for written.Load() < total*int64(step+1)/4 {
				time.Sleep(time.Millisecond)
			}
			if err := store.RepartitionTo(obj); err != nil {
				errs <- fmt.Errorf("RepartitionTo(%v): %w", obj, err)
				return
			}
		}
	}()
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Fatal(err)
	}
	if n := store.Stats().Repartitions; n < 3 {
		t.Fatalf("expected the three ladder swaps, got %d", n)
	}
	if err := store.LastMaintenanceError(); err != nil {
		t.Fatalf("maintenance error after storm: %v", err)
	}
	if an, _ := store.Analysis(); an.Kind != vpindex.ObjectiveDVA {
		t.Fatalf("ladder should end on dva, got %v", an.Kind)
	}

	// Quiescent oracle comparison against the merged final states.
	oracle := model.NewBruteForce()
	for w := range final {
		for _, o := range final[w] {
			if err := oracle.Insert(*o); err != nil {
				t.Fatal(err)
			}
		}
	}
	if store.Len() != oracle.Len() {
		t.Fatalf("len %d vs oracle %d", store.Len(), oracle.Len())
	}
	for id := 1; id <= writers*idsPer; id++ {
		g, gok := store.Get(vpindex.ObjectID(id))
		w, wok := oracle.Get(vpindex.ObjectID(id))
		if gok != wok || (gok && g != w) {
			t.Fatalf("get %d: (%v,%v) vs oracle (%v,%v)", id, g, gok, w, wok)
		}
	}
	rng := rand.New(rand.NewSource(57))
	now := float64(perWriter) / 8
	for i := 0; i < 12; i++ {
		queries := []vpindex.RangeQuery{
			vpindex.SliceQuery(vpindex.Circle{C: vpindex.V(rng.Float64()*20000, rng.Float64()*20000), R: 2500}, now, now+20),
			vpindex.IntervalQuery(vpindex.R(2000, 2000, 9000, 9000), now, now+5, now+25),
			vpindex.MovingQuery(vpindex.R(0, 0, 6000, 6000), vpindex.V(30, 10), now, now, now+30),
		}
		for _, q := range queries {
			got, err := store.Search(q)
			if err != nil {
				t.Fatal(err)
			}
			want, err := oracle.Search(q)
			if err != nil {
				t.Fatal(err)
			}
			got, want = sortedIDs(got), sortedIDs(want)
			if fmt.Sprint(got) != fmt.Sprint(want) {
				t.Fatalf("%v: got %v want %v", q.Kind, got, want)
			}
		}
	}
	q := vpindex.KNNQuery{Center: vpindex.V(10000, 10000), K: 10, Now: now, T: now + 30}
	got, err := store.SearchKNN(q)
	if err != nil {
		t.Fatal(err)
	}
	want, _ := oracle.SearchKNN(q)
	if len(got) != len(want) {
		t.Fatalf("kNN %d vs %d results", len(got), len(want))
	}
	for i := range got {
		if diff := got[i].Dist - want[i].Dist; diff > 1e-6 || diff < -1e-6 {
			t.Fatalf("kNN %d: dist %g vs %g", i, got[i].Dist, want[i].Dist)
		}
	}
}
