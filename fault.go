package vpindex

import "repro/internal/storage"

// This file re-exports the storage fault plane so applications and tests can
// script fault schedules against a durable Store without importing internal
// packages. The injector attaches with WithFaultInjector and sits at the
// PageStore/WAL boundary: every physical page read/write/fsync and every log
// append/fsync consults it before touching the OS.

// Fault-plane types, aliased from internal/storage.
type (
	// FaultOp names one injectable I/O operation class.
	FaultOp = storage.FaultOp
	// FaultKind names what goes wrong when a fault fires.
	FaultKind = storage.FaultKind
	// FaultRule is one deterministic entry of a scripted schedule.
	FaultRule = storage.FaultRule
	// FaultRates are per-kind probabilities for a seeded random schedule.
	FaultRates = storage.FaultRates
	// FaultScript decides, per operation, whether a fault fires.
	FaultScript = storage.FaultScript
	// RetryPolicy bounds the exponential-backoff retry loop around
	// transient faults (see WithRetryPolicy).
	RetryPolicy = storage.RetryPolicy
)

// Injectable operations (FaultRule.Op).
const (
	OpPageRead       = storage.OpPageRead
	OpPageWrite      = storage.OpPageWrite
	OpPageSync       = storage.OpPageSync
	OpWALAppend      = storage.OpWALAppend
	OpWALSync        = storage.OpWALSync
	OpCheckpointSync = storage.OpCheckpointSync
)

// Fault kinds (FaultRule.Kind).
const (
	// FaultTransientEIO fails one attempt with EIO; the retry policy
	// absorbs it invisibly unless retries are exhausted.
	FaultTransientEIO = storage.FaultTransientEIO
	// FaultPermanentEIO fails the operation and latches: the page (or the
	// whole operation class, for syncs) stays dead, degrading the store.
	FaultPermanentEIO = storage.FaultPermanentEIO
	// FaultTornWrite reports success but persists only a prefix of the
	// page image — caught by the CRC on the next read.
	FaultTornWrite = storage.FaultTornWrite
	// FaultBitFlip reports success but flips one persisted bit — caught by
	// the CRC on the next read.
	FaultBitFlip = storage.FaultBitFlip
	// FaultSyncFail fails one fsync transiently.
	FaultSyncFail = storage.FaultSyncFail
	// FaultLatency delays the operation without failing it.
	FaultLatency = storage.FaultLatency
)

// NewScriptedInjector returns an injector driven by a deterministic rule
// list: each rule names an operation class, an optional 1-based sequence
// number and page, a fault kind, and an optional firing budget. Use with
// WithFaultInjector.
func NewScriptedInjector(rules ...FaultRule) *FaultInjector {
	return storage.NewScriptedInjector(rules...)
}

// NewSeededInjector returns an injector that draws faults from seeded
// per-kind probabilities — the chaos-test workhorse: the same seed always
// yields the same schedule. Use with WithFaultInjector.
func NewSeededInjector(seed int64, rates FaultRates) *FaultInjector {
	return storage.NewSeededInjector(seed, rates)
}

// IsTransient reports whether err is a storage fault worth retrying
// (a transient EIO or failed fsync that has not exhausted its retries).
func IsTransient(err error) bool { return storage.IsTransient(err) }

// IsMediaFault reports whether err originated in the storage media at all —
// injected EIO, a checksum failure, a latched page — as opposed to logical
// errors like ErrNotFound.
func IsMediaFault(err error) bool { return storage.IsMediaFault(err) }
