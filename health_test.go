package vpindex_test

import (
	"errors"
	"math/rand"
	"os"
	"path/filepath"
	"sort"
	"sync"
	"testing"
	"time"

	vpindex "repro"
)

// fastRetry keeps the fault tests quick: real backoff delays would dominate
// the run time without changing any outcome.
func fastRetry() vpindex.Option {
	return vpindex.WithRetryPolicy(vpindex.RetryPolicy{
		MaxAttempts: 4,
		BaseDelay:   time.Microsecond,
		MaxDelay:    10 * time.Microsecond,
	})
}

func TestPermanentWALFaultDegradesToReadOnly(t *testing.T) {
	fi := vpindex.NewScriptedInjector(
		vpindex.FaultRule{Op: vpindex.OpWALAppend, Seq: 3, Kind: vpindex.FaultPermanentEIO},
	)
	store, err := vpindex.Open(
		vpindex.WithKind(vpindex.TPRStar),
		vpindex.WithDomain(vpindex.R(0, 0, 20000, 20000)),
		vpindex.WithShards(2),
		vpindex.WithDataDir(t.TempDir()),
		vpindex.WithFaultInjector(fi),
		fastRetry(),
	)
	if err != nil {
		t.Fatal(err)
	}
	defer store.Close()

	rng := rand.New(rand.NewSource(1))
	if err := store.Report(testObject(1, rng)); err != nil {
		t.Fatalf("report 1: %v", err)
	}
	if err := store.Report(testObject(2, rng)); err != nil {
		t.Fatalf("report 2: %v", err)
	}
	// The third append hits the permanent fault: the write fails with a
	// non-transient media fault and the store degrades.
	err = store.Report(testObject(3, rng))
	if err == nil {
		t.Fatal("write over a permanently failed log succeeded")
	}
	if !vpindex.IsMediaFault(err) || vpindex.IsTransient(err) {
		t.Fatalf("write error %v, want a non-transient media fault", err)
	}
	if got := store.Health(); got != vpindex.HealthDegraded {
		t.Fatalf("Health = %v, want degraded", got)
	}
	// Writes are now refused with ErrDegraded, before touching storage.
	for _, werr := range []error{
		store.Report(testObject(4, rng)),
		store.Remove(1),
		store.ReportBatch([]vpindex.Object{testObject(5, rng)}),
	} {
		if !errors.Is(werr, vpindex.ErrDegraded) {
			t.Fatalf("write on degraded store = %v, want ErrDegraded", werr)
		}
	}
	if _, _, serr := store.Subscribe(vpindex.Subscription{Query: wholeDomain(), Horizon: 100}, 0); !errors.Is(serr, vpindex.ErrDegraded) {
		t.Fatalf("subscribe on degraded store = %v, want ErrDegraded", serr)
	}
	// Reads keep serving the pre-fault state.
	if _, ok := store.Get(1); !ok {
		t.Fatal("degraded store lost a read")
	}
	// The failed write was applied in memory before its log append failed, so
	// it stays visible here (3 objects) — but it is not durable, and the
	// degraded store can accept nothing further.
	ids, err := store.Search(wholeDomain())
	if err != nil {
		t.Fatalf("search on degraded store: %v", err)
	}
	if len(ids) != 3 {
		t.Fatalf("degraded Search found %d objects, want 3", len(ids))
	}
	st, ok := store.DurabilityStats()
	if !ok || st.Health != vpindex.HealthDegraded || st.HealthReason == "" {
		t.Fatalf("DurabilityStats health = %+v, want degraded with a reason", st)
	}
}

func TestTransientFaultsAreInvisibleToClients(t *testing.T) {
	fi := vpindex.NewScriptedInjector(
		vpindex.FaultRule{Op: vpindex.OpWALAppend, Seq: 2, Kind: vpindex.FaultTransientEIO},
		vpindex.FaultRule{Op: vpindex.OpWALSync, Seq: 1, Kind: vpindex.FaultSyncFail},
	)
	store, err := vpindex.Open(
		vpindex.WithKind(vpindex.Bx),
		vpindex.WithDomain(vpindex.R(0, 0, 20000, 20000)),
		vpindex.WithShards(1),
		vpindex.WithDataDir(t.TempDir()),
		vpindex.WithFaultInjector(fi),
		fastRetry(),
	)
	if err != nil {
		t.Fatal(err)
	}
	defer store.Close()
	rng := rand.New(rand.NewSource(2))
	for i := 1; i <= 5; i++ {
		if err := store.Report(testObject(i, rng)); err != nil {
			t.Fatalf("report %d over transient faults: %v", i, err)
		}
	}
	if got := store.Health(); got != vpindex.HealthHealthy {
		t.Fatalf("Health = %v after absorbed transient faults, want healthy", got)
	}
	st, _ := store.DurabilityStats()
	if st.IORetries < 2 {
		t.Fatalf("IORetries = %d, want >= 2 (both scripted faults retried)", st.IORetries)
	}
	if fi.InjectedFaults() != 2 {
		t.Fatalf("InjectedFaults = %d, want 2", fi.InjectedFaults())
	}
}

// corruptLiveSlot flips one byte inside the first non-zero data slot of the
// page file, behind the store's back. Slot layout: 4096-byte page + 8-byte
// CRC trailer; slot 0 is the superblock.
func corruptLiveSlot(t *testing.T, path string) {
	t.Helper()
	const slotSize = 4096 + 8
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	for slot := 1; (slot+1)*slotSize <= len(data); slot++ {
		off := slot * slotSize
		for i := off; i < off+slotSize; i++ {
			if data[i] != 0 {
				f, err := os.OpenFile(path, os.O_WRONLY, 0)
				if err != nil {
					t.Fatal(err)
				}
				defer f.Close()
				if _, err := f.WriteAt([]byte{data[off+100] ^ 0x5A}, int64(off+100)); err != nil {
					t.Fatal(err)
				}
				return
			}
		}
	}
	t.Fatal("no physically written data slot found to corrupt")
}

func scrubStoreOpts(dir string, extra ...vpindex.Option) []vpindex.Option {
	opts := []vpindex.Option{
		vpindex.WithKind(vpindex.TPRStar),
		vpindex.WithDomain(vpindex.R(0, 0, 20000, 20000)),
		vpindex.WithShards(1),
		vpindex.WithBufferPages(4), // force evictions so pages reach disk
		vpindex.WithDataDir(dir),
	}
	return append(opts, extra...)
}

func TestScrubNowFindsLatentCorruption(t *testing.T) {
	dir := t.TempDir()
	store, err := vpindex.Open(scrubStoreOpts(dir)...)
	if err != nil {
		t.Fatal(err)
	}
	defer store.Close()
	rng := rand.New(rand.NewSource(3))
	// Enough objects that the tree outgrows the 4-frame pool and evictions
	// push real page images to disk for the scrubber to verify.
	for i := 1; i <= 1200; i++ {
		if err := store.Report(testObject(i, rng)); err != nil {
			t.Fatal(err)
		}
	}
	if err := store.ScrubNow(); err != nil {
		t.Fatalf("scrub of a clean store: %v", err)
	}
	corruptLiveSlot(t, filepath.Join(dir, "pages.dat"))
	err = store.ScrubNow()
	if !errors.Is(err, vpindex.ErrCorruptPage) {
		t.Fatalf("scrub over corruption = %v, want ErrCorruptPage", err)
	}
	if got := store.Health(); got != vpindex.HealthDegraded {
		t.Fatalf("Health after scrub = %v, want degraded", got)
	}
	st, _ := store.DurabilityStats()
	if st.ScrubPasses < 2 || st.ScrubCorruptions < 1 || st.QuarantinedPages < 1 {
		t.Fatalf("scrub stats = %+v, want >=2 passes, >=1 corruption, >=1 quarantined", st)
	}
	if werr := store.Report(testObject(1201, rng)); !errors.Is(werr, vpindex.ErrDegraded) {
		t.Fatalf("write after scrub degradation = %v, want ErrDegraded", werr)
	}
	// The id→record tables are in memory; point reads keep serving.
	if _, ok := store.Get(40); !ok {
		t.Fatal("degraded store lost a record")
	}
}

func TestBackgroundScrubberDegrades(t *testing.T) {
	dir := t.TempDir()
	store, err := vpindex.Open(scrubStoreOpts(dir, vpindex.WithScrubEvery(2*time.Millisecond))...)
	if err != nil {
		t.Fatal(err)
	}
	defer store.Close()
	rng := rand.New(rand.NewSource(4))
	for i := 1; i <= 1200; i++ {
		if err := store.Report(testObject(i, rng)); err != nil {
			t.Fatal(err)
		}
	}
	corruptLiveSlot(t, filepath.Join(dir, "pages.dat"))
	deadline := time.Now().Add(10 * time.Second)
	for store.Health() != vpindex.HealthDegraded {
		if time.Now().After(deadline) {
			t.Fatal("background scrubber never found the corruption")
		}
		time.Sleep(time.Millisecond)
	}
	st, _ := store.DurabilityStats()
	if st.ScrubCorruptions < 1 {
		t.Fatalf("ScrubCorruptions = %d, want >= 1", st.ScrubCorruptions)
	}
}

func TestScrubNowNonDurable(t *testing.T) {
	store, err := vpindex.Open()
	if err != nil {
		t.Fatal(err)
	}
	if err := store.ScrubNow(); !errors.Is(err, vpindex.ErrUnsupported) {
		t.Fatalf("ScrubNow on a non-durable store = %v, want ErrUnsupported", err)
	}
}

func TestMidLogCorruptionRecoversPrefixReadOnly(t *testing.T) {
	dir := t.TempDir()
	opts := []vpindex.Option{
		vpindex.WithKind(vpindex.TPRStar),
		vpindex.WithDomain(vpindex.R(0, 0, 20000, 20000)),
		vpindex.WithShards(2),
		vpindex.WithDataDir(dir),
		vpindex.WithWALSegmentBytes(4096),
	}
	store, err := vpindex.Open(opts...)
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(5))
	const n = 200
	for i := 1; i <= n; i++ {
		if err := store.Report(testObject(i, rng)); err != nil {
			t.Fatal(err)
		}
	}
	if err := store.Close(); err != nil {
		t.Fatal(err)
	}

	// Corrupt the middle of the FIRST segment: valid acknowledged records
	// exist beyond the bad frame (in later segments), so this is mid-log
	// corruption, not a benign torn tail.
	segs, err := filepath.Glob(filepath.Join(dir, "wal", "wal-*.seg"))
	if err != nil {
		t.Fatal(err)
	}
	sort.Strings(segs)
	if len(segs) < 2 {
		t.Fatalf("want >= 2 WAL segments, got %d", len(segs))
	}
	info, err := os.Stat(segs[0])
	if err != nil {
		t.Fatal(err)
	}
	f, err := os.OpenFile(segs[0], os.O_RDWR, 0)
	if err != nil {
		t.Fatal(err)
	}
	mid := info.Size() / 2
	b := make([]byte, 1)
	if _, err := f.ReadAt(b, mid); err != nil {
		t.Fatal(err)
	}
	if _, err := f.WriteAt([]byte{b[0] ^ 0xFF}, mid); err != nil {
		t.Fatal(err)
	}
	f.Close()

	// Reopen: the store must come up serving the intact prefix, read-only,
	// instead of silently dropping acknowledged history or refusing to open.
	recovered, err := vpindex.Open(opts...)
	if err != nil {
		t.Fatalf("open over mid-log corruption: %v", err)
	}
	defer recovered.Close()
	if got := recovered.Health(); got != vpindex.HealthDegraded {
		t.Fatalf("Health = %v, want degraded", got)
	}
	got := recovered.Len()
	if got == 0 || got >= n {
		t.Fatalf("recovered Len = %d, want a proper non-empty prefix of %d", got, n)
	}
	// The earliest records precede the corruption and must have survived.
	if _, ok := recovered.Get(1); !ok {
		t.Fatal("first record lost from the intact prefix")
	}
	if werr := recovered.Report(testObject(n+1, rng)); !errors.Is(werr, vpindex.ErrDegraded) {
		t.Fatalf("write on corrupt-log store = %v, want ErrDegraded", werr)
	}
	st, _ := recovered.DurabilityStats()
	if st.HealthReason == "" {
		t.Fatal("degraded store records no reason")
	}
}

func TestCloseIsIdempotentAndConcurrent(t *testing.T) {
	store, err := vpindex.Open(
		vpindex.WithKind(vpindex.TPRStar),
		vpindex.WithDomain(vpindex.R(0, 0, 20000, 20000)),
		vpindex.WithShards(2),
		vpindex.WithDataDir(t.TempDir()),
	)
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(6))
	for i := 1; i <= 10; i++ {
		if err := store.Report(testObject(i, rng)); err != nil {
			t.Fatal(err)
		}
	}
	var wg sync.WaitGroup
	errs := make([]error, 10)
	for i := range errs {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			errs[i] = store.Close()
		}(i)
	}
	wg.Wait()
	for i, err := range errs {
		if err != nil {
			t.Fatalf("concurrent Close %d: %v", i, err)
		}
	}
	if err := store.Close(); err != nil {
		t.Fatalf("Close after Close: %v", err)
	}
	if got := store.Health(); got != vpindex.HealthFailed {
		t.Fatalf("Health after Close = %v, want failed", got)
	}
	if werr := store.Report(testObject(11, rng)); !errors.Is(werr, vpindex.ErrFailed) {
		t.Fatalf("write after Close = %v, want ErrFailed", werr)
	}
	// Reads still answer from the final in-memory state.
	if _, ok := store.Get(5); !ok {
		t.Fatal("closed store lost its in-memory state")
	}
}

func TestHealthStringAndNonDurableDefaults(t *testing.T) {
	if vpindex.HealthHealthy.String() != "healthy" ||
		vpindex.HealthDegraded.String() != "degraded" ||
		vpindex.HealthFailed.String() != "failed" {
		t.Fatal("Health.String misnames a state")
	}
	store, err := vpindex.Open()
	if err != nil {
		t.Fatal(err)
	}
	if store.Health() != vpindex.HealthHealthy {
		t.Fatal("non-durable store not healthy")
	}
	if err := store.Close(); err != nil {
		t.Fatal(err)
	}
	if err := store.Close(); err != nil {
		t.Fatal(err)
	}
}
