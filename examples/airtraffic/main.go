// Air traffic: velocity partitioning beyond road networks and beyond k=2.
// The paper notes flights follow a few fixed corridors and that VP "will
// work for any number of DVAs separated by any angle" (Section 4). Here
// three flight corridors cross a 100 km sector at 0, 60 and 120 degrees;
// a VP index with k=3 separates them, and a controller asks time-interval
// queries ("which aircraft cross this sector cell in the next 2 minutes?").
//
// Run with: go run ./examples/airtraffic
package main

import (
	"fmt"
	"log"
	"math"
	"math/rand"

	vpindex "repro"
)

const (
	numFlights = 6000
	sectorSide = 100000.0
)

// corridorFleet synthesizes flights along three corridors plus a few
// free-routing aircraft.
func corridorFleet(rng *rand.Rand) []vpindex.Object {
	angles := []float64{0, math.Pi / 3, 2 * math.Pi / 3}
	fleet := make([]vpindex.Object, numFlights)
	for i := range fleet {
		pos := vpindex.V(rng.Float64()*sectorSide, rng.Float64()*sectorSide)
		var vel vpindex.Vec2
		if rng.Float64() < 0.06 {
			// Free-routing (the outlier partition will take these).
			ang := rng.Float64() * 2 * math.Pi
			speed := 150 + rng.Float64()*100
			vel = vpindex.V(speed*math.Cos(ang), speed*math.Sin(ang))
		} else {
			ang := angles[rng.Intn(len(angles))]
			speed := 180 + rng.Float64()*70 // m/ts
			if rng.Intn(2) == 0 {
				speed = -speed
			}
			vel = vpindex.V(speed*math.Cos(ang), speed*math.Sin(ang))
			// Slight heading deviation within the corridor.
			dev := rng.NormFloat64() * 2
			vel = vel.Add(vpindex.V(-math.Sin(ang), math.Cos(ang)).Scale(dev))
		}
		fleet[i] = vpindex.Object{ID: vpindex.ObjectID(i + 1), Pos: pos, Vel: vel, T: 0}
	}
	return fleet
}

func main() {
	rng := rand.New(rand.NewSource(3))
	fleet := corridorFleet(rng)
	sample := make([]vpindex.Vec2, len(fleet))
	for i, f := range fleet {
		sample[i] = f.Vel
	}

	store, err := vpindex.Open(
		vpindex.WithKind(vpindex.TPRStar),
		vpindex.WithDomain(vpindex.R(0, 0, sectorSide, sectorSide)),
		vpindex.WithVelocityPartitioning(3), // three corridors
		vpindex.WithVelocitySample(sample),
		vpindex.WithSeed(3),
	)
	if err != nil {
		log.Fatal(err)
	}
	an, _ := store.Analysis()
	fmt.Println("corridors discovered by the velocity analyzer:")
	for i, d := range an.Frames {
		if d.IsOutlier {
			continue
		}
		fmt.Printf("  corridor %d: heading %6.1f deg, tau %.1f m/ts\n",
			i, d.Axis.Angle()*180/math.Pi, d.Tau)
	}

	// One radar sweep delivers the whole fleet: batch-report it.
	if err := store.ReportBatch(fleet); err != nil {
		log.Fatal(err)
	}

	// Controller scan: a 10x10 grid of sector cells; for each, which
	// aircraft cross it during the next 120 ts?
	fmt.Println("\nsector load (aircraft crossing each 10 km cell within 120 ts):")
	total := 0
	for row := 9; row >= 0; row-- {
		for col := 0; col < 10; col++ {
			cell := vpindex.R(
				float64(col)*10000, float64(row)*10000,
				float64(col+1)*10000, float64(row+1)*10000,
			)
			ids, err := store.Search(vpindex.IntervalQuery(cell, 0, 0, 120))
			if err != nil {
				log.Fatal(err)
			}
			total += len(ids)
			fmt.Printf("%5d", len(ids))
		}
		fmt.Println()
	}
	fmt.Printf("\ntotal crossings counted: %d; simulated I/O: %+v\n", total, store.Stats().IOStats)
}
