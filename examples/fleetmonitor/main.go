// Fleet monitor: continuous situational awareness around a moving convoy —
// the paper's moving range query ("a tank wants to know if there are any
// other tanks within one kilometer of itself", Section 6) — served as a
// Store-native standing subscription over a Store that bootstraps its own
// velocity partitions online. No upfront velocity sample is supplied: the
// Store opens in a staging index, accumulates the first reported
// velocities, then runs the DVA analysis and migrates the live fleet into
// the partitions mid-stream — and the standing subscription's result set
// rides through the cutover untouched, because subscription state lives
// above the index epochs.
//
// Every 20 ts the protective zone is re-centered on the convoy's current
// predicted position (unsubscribe + subscribe), and between checks the
// subscription is maintained incrementally by the report stream itself.
//
// Run with: go run ./examples/fleetmonitor
package main

import (
	"fmt"
	"log"

	vpindex "repro"
	"repro/internal/workload"
)

func main() {
	params := workload.DefaultParams(workload.Chicago, 6000)
	params.Domain = vpindex.R(0, 0, 24000, 24000)
	params.Duration = 120
	gen, err := workload.NewGenerator(params)
	if err != nil {
		log.Fatal(err)
	}

	// The auto-partition threshold lands mid-stream: the 6000 initial
	// reports stay in the staging index, and the analysis triggers 2000
	// location reports into live traffic.
	store, err := vpindex.Open(
		vpindex.WithKind(vpindex.TPRStar),
		vpindex.WithDomain(params.Domain),
		vpindex.WithBufferPages(50),
		vpindex.WithVelocityPartitioning(2),
		vpindex.WithAutoPartition(8000),
		vpindex.WithSeed(params.Seed),
	)
	if err != nil {
		log.Fatal(err)
	}
	if err := store.ReportBatch(gen.Initial()); err != nil {
		log.Fatal(err)
	}
	collected, target := store.BootstrapProgress()
	fmt.Printf("staging index loaded: %d vehicles, bootstrap sample %d/%d\n\n",
		store.Len(), collected, target)

	// The convoy: vehicle 1. Its protective zone is a 2 km box that
	// translates with the convoy's current velocity, watched 30 ts ahead.
	convoy, ok := store.Get(1)
	if !ok {
		log.Fatal("convoy vehicle missing")
	}
	fmt.Printf("convoy at %v moving %v\n\n", convoy.Pos, convoy.Vel)

	// subscribeZone (re-)registers the standing moving-range query centered
	// on the convoy's predicted position at time now.
	subscribeZone := func(prev vpindex.SubscriptionID, now float64) (vpindex.SubscriptionID, int) {
		if prev != 0 {
			if err := store.Unsubscribe(prev); err != nil {
				log.Fatal(err)
			}
		}
		convoy, _ = store.Get(1)
		c := convoy.PosAt(now)
		zone := vpindex.R(c.X-1000, c.Y-1000, c.X+1000, c.Y+1000)
		id, seed, err := store.Subscribe(vpindex.Subscription{
			Query:  vpindex.MovingQuery(zone, convoy.Vel, 0, 0, 0),
			Window: 30, // anyone intersecting the moving zone within 30 ts
		}, now)
		if err != nil {
			log.Fatal(err)
		}
		// The convoy itself is always in its own zone; report the rest.
		alerts := 0
		for _, e := range seed {
			if e.ID != 1 {
				alerts++
			}
		}
		return id, alerts
	}

	nextCheck := 20.0
	checks := 0
	partitioned := false
	subID, _ := subscribeZone(0, 0)
	for {
		ev, okUpd := gen.NextUpdate()
		if !okUpd {
			break
		}
		// Production verb: the device reports only its new state; the
		// subscription engine keeps the zone's membership current.
		if err := store.Report(ev.New); err != nil {
			log.Fatal(err)
		}
		if !partitioned && store.Partitioned() {
			partitioned = true
			an, _ := store.Analysis()
			members, _ := store.SubscriptionResults(subID)
			fmt.Printf("t=%6.1f  >>> online bootstrap: analyzed %d velocities, migrated %d vehicles "+
				"into %d partitions; zone membership (%d) carried across <<<\n",
				ev.T, an.SampleSize, store.Len(), len(store.Partitions()), len(members))
		}
		if ev.T < nextCheck {
			continue
		}
		nextCheck += 20
		checks++
		var alerts int
		subID, alerts = subscribeZone(subID, ev.T)
		fmt.Printf("t=%6.1f  convoy zone re-centered: %d vehicles will cross it within 30 ts\n",
			ev.T, alerts)
	}
	if !partitioned {
		log.Fatal("bootstrap never triggered — raise workload duration or lower the threshold")
	}
	members, err := store.SubscriptionResults(subID)
	if err != nil {
		log.Fatal(err)
	}
	st := store.Stats()
	fmt.Printf("\n%d monitoring rounds; final zone occupancy %d; total simulated I/O: %d reads / %d writes\n",
		checks, len(members), st.Reads, st.Writes)
}
