// Fleet monitor: continuous situational awareness around a moving convoy —
// the paper's moving range query ("a tank wants to know if there are any
// other tanks within one kilometer of itself", Section 6). A convoy
// travels a Chicago-style grid while the monitor asks which vehicles will
// intersect a protective box translating with the convoy over the next
// minute, re-issuing the query as updates stream in.
//
// Run with: go run ./examples/fleetmonitor
package main

import (
	"fmt"
	"log"

	vpindex "repro"
	"repro/internal/workload"
)

func main() {
	params := workload.DefaultParams(workload.Chicago, 6000)
	params.Domain = vpindex.R(0, 0, 24000, 24000)
	params.Duration = 120
	gen, err := workload.NewGenerator(params)
	if err != nil {
		log.Fatal(err)
	}

	idx, err := vpindex.NewVP(gen.VelocitySample(5000), vpindex.VPOptions{
		Options: vpindex.Options{Kind: vpindex.TPRStar, Domain: params.Domain, BufferPages: 50},
		K:       2,
		Seed:    params.Seed,
	})
	if err != nil {
		log.Fatal(err)
	}
	for _, o := range gen.Initial() {
		if err := idx.Insert(o); err != nil {
			log.Fatal(err)
		}
	}

	// The convoy: vehicle 1. Its protective zone is a 2 km box that
	// translates with the convoy's current velocity.
	convoy, ok := idx.Get(1)
	if !ok {
		log.Fatal("convoy vehicle missing")
	}
	fmt.Printf("convoy at %v moving %v\n\n", convoy.Pos, convoy.Vel)

	// Stream updates; every 20 ts re-issue the moving range query for the
	// next 30 ts of travel.
	nextCheck := 20.0
	checks := 0
	for {
		ev, okUpd := gen.NextUpdate()
		if !okUpd {
			break
		}
		if err := idx.Update(ev.Old, ev.New); err != nil {
			log.Fatal(err)
		}
		if ev.T < nextCheck {
			continue
		}
		nextCheck += 20
		checks++
		convoy, _ = idx.Get(1)
		zone := vpindex.R(
			convoy.PosAt(ev.T).X-1000, convoy.PosAt(ev.T).Y-1000,
			convoy.PosAt(ev.T).X+1000, convoy.PosAt(ev.T).Y+1000,
		)
		q := vpindex.MovingQuery(zone, convoy.Vel, ev.T, ev.T, ev.T+30)
		ids, err := idx.Search(q)
		if err != nil {
			log.Fatal(err)
		}
		// Exclude the convoy itself from its own alert list.
		alerts := 0
		for _, id := range ids {
			if id != 1 {
				alerts++
			}
		}
		fmt.Printf("t=%6.1f  convoy zone %v: %d vehicles will enter within 30 ts\n",
			ev.T, zone, alerts)
	}
	st := idx.Stats()
	fmt.Printf("\n%d monitoring rounds; total simulated I/O: %d reads / %d writes\n",
		checks, st.Reads, st.Writes)
}
