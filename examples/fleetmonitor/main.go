// Fleet monitor: continuous situational awareness around a moving convoy —
// the paper's moving range query ("a tank wants to know if there are any
// other tanks within one kilometer of itself", Section 6) — served by a
// Store that bootstraps its own velocity partitions online. No upfront
// velocity sample is supplied: the Store opens in a staging index,
// accumulates the first reported velocities, then runs the DVA analysis and
// migrates the live fleet into the partitions mid-stream, while the convoy
// queries keep answering throughout the cutover.
//
// Run with: go run ./examples/fleetmonitor
package main

import (
	"fmt"
	"log"

	vpindex "repro"
	"repro/internal/workload"
)

func main() {
	params := workload.DefaultParams(workload.Chicago, 6000)
	params.Domain = vpindex.R(0, 0, 24000, 24000)
	params.Duration = 120
	gen, err := workload.NewGenerator(params)
	if err != nil {
		log.Fatal(err)
	}

	// The auto-partition threshold lands mid-stream: the 6000 initial
	// reports stay in the staging index, and the analysis triggers 2000
	// location reports into live traffic.
	store, err := vpindex.Open(
		vpindex.WithKind(vpindex.TPRStar),
		vpindex.WithDomain(params.Domain),
		vpindex.WithBufferPages(50),
		vpindex.WithVelocityPartitioning(2),
		vpindex.WithAutoPartition(8000),
		vpindex.WithSeed(params.Seed),
	)
	if err != nil {
		log.Fatal(err)
	}
	if err := store.ReportBatch(gen.Initial()); err != nil {
		log.Fatal(err)
	}
	collected, target := store.BootstrapProgress()
	fmt.Printf("staging index loaded: %d vehicles, bootstrap sample %d/%d\n\n",
		store.Len(), collected, target)

	// The convoy: vehicle 1. Its protective zone is a 2 km box that
	// translates with the convoy's current velocity.
	convoy, ok := store.Get(1)
	if !ok {
		log.Fatal("convoy vehicle missing")
	}
	fmt.Printf("convoy at %v moving %v\n\n", convoy.Pos, convoy.Vel)

	// Stream location reports; every 20 ts re-issue the moving range query
	// for the next 30 ts of travel.
	nextCheck := 20.0
	checks := 0
	partitioned := false
	for {
		ev, okUpd := gen.NextUpdate()
		if !okUpd {
			break
		}
		// Production verb: the device reports only its new state.
		if err := store.Report(ev.New); err != nil {
			log.Fatal(err)
		}
		if !partitioned && store.Partitioned() {
			partitioned = true
			an, _ := store.Analysis()
			fmt.Printf("t=%6.1f  >>> online bootstrap: analyzed %d velocities, "+
				"migrated %d vehicles into %d partitions <<<\n",
				ev.T, an.SampleSize, store.Len(), len(store.Partitions()))
		}
		if ev.T < nextCheck {
			continue
		}
		nextCheck += 20
		checks++
		convoy, _ = store.Get(1)
		zone := vpindex.R(
			convoy.PosAt(ev.T).X-1000, convoy.PosAt(ev.T).Y-1000,
			convoy.PosAt(ev.T).X+1000, convoy.PosAt(ev.T).Y+1000,
		)
		q := vpindex.MovingQuery(zone, convoy.Vel, ev.T, ev.T, ev.T+30)
		ids, err := store.Search(q)
		if err != nil {
			log.Fatal(err)
		}
		// Exclude the convoy itself from its own alert list.
		alerts := 0
		for _, id := range ids {
			if id != 1 {
				alerts++
			}
		}
		fmt.Printf("t=%6.1f  convoy zone %v: %d vehicles will enter within 30 ts\n",
			ev.T, zone, alerts)
	}
	if !partitioned {
		log.Fatal("bootstrap never triggered — raise workload duration or lower the threshold")
	}
	st := store.Stats()
	fmt.Printf("\n%d monitoring rounds; total simulated I/O: %d reads / %d writes\n",
		checks, st.Reads, st.Writes)
}
