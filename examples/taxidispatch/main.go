// Taxi dispatch: the paper's motivating scenario — "a taxi driver is
// interested in potential passengers within 200 meters of itself"
// (Section 6). Taxis drive a San-Francisco-like street grid; dispatch
// repeatedly asks circular range queries around moving taxis. The example
// contrasts the query I/O of an unpartitioned Bx-tree against the
// VP-partitioned one on exactly the same fleet.
//
// Run with: go run ./examples/taxidispatch
package main

import (
	"fmt"
	"log"

	vpindex "repro"
	"repro/internal/workload"
)

func main() {
	// A San-Francisco-like workload: 8000 vehicles on a rotated street
	// grid, paper-default speeds.
	params := workload.DefaultParams(workload.SanFrancisco, 8000)
	params.Domain = vpindex.R(0, 0, 28000, 28000) // keep paper density
	params.Duration = 60
	gen, err := workload.NewGenerator(params)
	if err != nil {
		log.Fatal(err)
	}

	build := func(partitioned bool) (*vpindex.Store, error) {
		opts := []vpindex.Option{
			vpindex.WithKind(vpindex.Bx),
			vpindex.WithDomain(params.Domain),
			vpindex.WithBufferPages(50),
		}
		if partitioned {
			opts = append(opts,
				vpindex.WithVelocityPartitioning(2),
				vpindex.WithVelocitySample(gen.VelocitySample(5000)),
				vpindex.WithSeed(params.Seed),
			)
		}
		return vpindex.Open(opts...)
	}

	for _, partitioned := range []bool{false, true} {
		idx, err := build(partitioned)
		if err != nil {
			log.Fatal(err)
		}
		if err := idx.ReportBatch(gen.Initial()); err != nil {
			log.Fatal(err)
		}

		// Dispatch round: for 200 taxi locations, find every vehicle that
		// will be within 500 m in 60 ts (the prediction horizon a dispatch
		// decision needs).
		before := idx.Stats()
		matches := 0
		for i, cab := range gen.Initial() {
			if i >= 200 {
				break
			}
			q := vpindex.SliceQuery(vpindex.Circle{C: cab.PosAt(0), R: 500}, 0, 60)
			ids, err := idx.Search(q)
			if err != nil {
				log.Fatal(err)
			}
			matches += len(ids)
		}
		io := idx.Stats().Reads - before.Reads
		name := "Bx-tree (unpartitioned)"
		if partitioned {
			name = "Bx-tree (velocity partitioned)"
		}
		fmt.Printf("%-32s %6d page reads for 200 dispatch queries (%.1f avg), %d candidate pickups\n",
			name, io, float64(io)/200, matches)
	}
}
