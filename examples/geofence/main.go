// Geofence: Store-native continuous queries over a velocity-partitioned
// Store. Security zones are registered once as standing subscriptions on
// the Store itself; as vehicles stream bare position/velocity reports
// through the ordinary Report verb, the Store's subscription engine emits
// enter/leave events for each zone's *predicted* membership (who will be
// inside the fence 30 ts from now) onto the asynchronous Events() stream —
// the location-based-service pattern the VP paper's introduction motivates.
// No wrapper object, no second lock: the same sharded write path that
// indexes the report also evaluates only the fences the report could
// affect, thanks to the velocity-class spatial filter.
//
// Run with: go run ./examples/geofence
package main

import (
	"fmt"
	"log"
	"sync"

	vpindex "repro"
	"repro/internal/workload"
)

func main() {
	params := workload.DefaultParams(workload.SanFrancisco, 5000)
	params.Domain = vpindex.R(0, 0, 22000, 22000)
	params.Duration = 90
	gen, err := workload.NewGenerator(params)
	if err != nil {
		log.Fatal(err)
	}

	store, err := vpindex.Open(
		vpindex.WithKind(vpindex.Bx),
		vpindex.WithDomain(params.Domain),
		vpindex.WithBufferPages(50),
		vpindex.WithVelocityPartitioning(2),
		vpindex.WithVelocitySample(gen.VelocitySample(4000)),
		vpindex.WithSeed(params.Seed),
		// Lossless stream: the consumer below keeps up, so reports never
		// stall; a dashboard that might fall behind would pick DropOldest.
		vpindex.WithEventBuffer(4096, vpindex.BlockOnFull),
	)
	if err != nil {
		log.Fatal(err)
	}

	// Consume the event stream concurrently with the report pipeline.
	counts := map[vpindex.SubscriptionID]map[string]int{}
	var (
		mu   sync.Mutex
		wg   sync.WaitGroup
		stop = make(chan struct{})
	)
	events := store.Events()
	wg.Add(1)
	go func() {
		defer wg.Done()
		for {
			select {
			case e := <-events:
				mu.Lock()
				if counts[e.Sub] == nil {
					counts[e.Sub] = map[string]int{}
				}
				counts[e.Sub][e.Kind.String()]++
				mu.Unlock()
			case <-stop:
				return
			}
		}
	}()

	// Load the fleet before fencing, so each subscription seeds instantly.
	if err := store.ReportBatch(gen.Initial()); err != nil {
		log.Fatal(err)
	}

	// Three fences, each watching who will be inside 30 ts ahead.
	fences := map[vpindex.SubscriptionID]string{}
	for _, f := range []struct {
		name string
		c    vpindex.Vec2
		r    float64
	}{
		{"airport", vpindex.V(4000, 4000), 1500},
		{"stadium", vpindex.V(15000, 6000), 1000},
		{"port", vpindex.V(9000, 18000), 2000},
	} {
		id, seed, err := store.Subscribe(vpindex.Subscription{
			Query:   vpindex.SliceQuery(vpindex.Circle{C: f.c, R: f.r}, 0, 0),
			Horizon: 30,
		}, 0)
		if err != nil {
			log.Fatal(err)
		}
		mu.Lock()
		fences[id] = f.name
		if counts[id] == nil {
			counts[id] = map[string]int{}
		}
		mu.Unlock()
		fmt.Printf("fence %-8s seeded with %d predicted occupants\n", f.name, len(seed))
	}

	// Stream location reports through the plain Store verb; refresh every
	// 15 ts so pure time drift is also caught.
	nextRefresh := 15.0
	for {
		ev, ok := gen.NextUpdate()
		if !ok {
			break
		}
		if err := store.Report(ev.New); err != nil {
			log.Fatal(err)
		}
		if ev.T >= nextRefresh {
			nextRefresh += 15
			if _, err := store.RefreshSubscriptions(ev.T); err != nil {
				log.Fatal(err)
			}
		}
	}
	close(stop)
	wg.Wait()
	// Drain anything still buffered after the consumer stopped.
	for {
		select {
		case e := <-events:
			if counts[e.Sub] == nil {
				counts[e.Sub] = map[string]int{}
			}
			counts[e.Sub][e.Kind.String()]++
			continue
		default:
		}
		break
	}

	// The stream carries the complete membership history, so the enter
	// totals include each fence's initial seeding.
	fmt.Println("\nevents over 90 ts of traffic (including subscription seeds):")
	for id, name := range fences {
		c := counts[id]
		fmt.Printf("  %-8s %4d enter, %4d leave (final occupancy %d)\n",
			name, c["enter"], c["leave"], func() int {
				r, _ := store.SubscriptionResults(id)
				return len(r)
			}())
	}
	st := store.Stats()
	fmt.Printf("\nsimulated I/O: %d reads / %d writes\n", st.Reads, st.Writes)
}
