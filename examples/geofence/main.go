// Geofence: continuous queries over a velocity-partitioned Store. Security
// zones are registered once as standing subscriptions; as vehicles stream
// bare position/velocity reports, the monitor emits enter/leave events for
// each zone's *predicted* membership (who will be inside the fence 30 ts
// from now) — the location-based-service pattern the VP paper's
// introduction motivates. The monitor drives the Store through the ID-keyed
// ProcessReport verb, so the pipeline never handles old records.
//
// Run with: go run ./examples/geofence
package main

import (
	"fmt"
	"log"

	vpindex "repro"
	"repro/internal/workload"
)

func main() {
	params := workload.DefaultParams(workload.SanFrancisco, 5000)
	params.Domain = vpindex.R(0, 0, 22000, 22000)
	params.Duration = 90
	gen, err := workload.NewGenerator(params)
	if err != nil {
		log.Fatal(err)
	}

	store, err := vpindex.Open(
		vpindex.WithKind(vpindex.Bx),
		vpindex.WithDomain(params.Domain),
		vpindex.WithBufferPages(50),
		vpindex.WithVelocityPartitioning(2),
		vpindex.WithVelocitySample(gen.VelocitySample(4000)),
		vpindex.WithSeed(params.Seed),
	)
	if err != nil {
		log.Fatal(err)
	}

	mon := vpindex.NewMonitor(store)
	for _, o := range gen.Initial() {
		if _, err := mon.ProcessReport(o); err != nil {
			log.Fatal(err)
		}
	}

	// Three fences, each watching who will be inside 30 ts ahead.
	fences := map[vpindex.SubscriptionID]string{}
	for _, f := range []struct {
		name string
		c    vpindex.Vec2
		r    float64
	}{
		{"airport", vpindex.V(4000, 4000), 1500},
		{"stadium", vpindex.V(15000, 6000), 1000},
		{"port", vpindex.V(9000, 18000), 2000},
	} {
		id, seed, err := mon.Subscribe(vpindex.Subscription{
			Query:   vpindex.SliceQuery(vpindex.Circle{C: f.c, R: f.r}, 0, 0),
			Horizon: 30,
		}, 0)
		if err != nil {
			log.Fatal(err)
		}
		fences[id] = f.name
		fmt.Printf("fence %-8s seeded with %d predicted occupants\n", f.name, len(seed))
	}

	// Stream location reports; count events per fence, refresh every 15 ts
	// so pure time drift is also caught.
	counts := map[string]map[string]int{}
	for _, name := range fences {
		counts[name] = map[string]int{}
	}
	nextRefresh := 15.0
	handle := func(evs []vpindex.MonitorEvent) {
		for _, e := range evs {
			counts[fences[e.Sub]][e.Kind.String()]++
		}
	}
	for {
		ev, ok := gen.NextUpdate()
		if !ok {
			break
		}
		evs, err := mon.ProcessReport(ev.New)
		if err != nil {
			log.Fatal(err)
		}
		handle(evs)
		if ev.T >= nextRefresh {
			nextRefresh += 15
			evs, err := mon.Refresh(ev.T)
			if err != nil {
				log.Fatal(err)
			}
			handle(evs)
		}
	}

	fmt.Println("\nevents over 90 ts of traffic:")
	for name, c := range counts {
		fmt.Printf("  %-8s %4d enter, %4d leave\n", name, c["enter"], c["leave"])
	}
	st := store.Stats()
	fmt.Printf("\nsimulated I/O: %d reads / %d writes\n", st.Reads, st.Writes)
}
