// Quickstart: build a velocity-partitioned moving-object index, insert a
// handful of vehicles, run the three predictive query types, and print the
// velocity analysis and I/O counters.
//
// Run with: go run ./examples/quickstart
package main

import (
	"fmt"
	"log"
	"math/rand"

	vpindex "repro"
)

func main() {
	// A workload sample: most vehicles travel along two road directions
	// (east-west and north-south); a few move freely. The analyzer only
	// needs velocities, not positions.
	rng := rand.New(rand.NewSource(1))
	sample := make([]vpindex.Vec2, 0, 2000)
	for i := 0; i < 2000; i++ {
		speed := 20 + rng.Float64()*60
		if rng.Intn(2) == 0 {
			speed = -speed
		}
		switch i % 5 {
		case 0, 1: // east-west
			sample = append(sample, vpindex.V(speed, rng.NormFloat64()))
		case 2, 3: // north-south
			sample = append(sample, vpindex.V(rng.NormFloat64(), speed))
		default: // free movers
			sample = append(sample, vpindex.V(rng.Float64()*100-50, rng.Float64()*100-50))
		}
	}

	// Build a VP-partitioned TPR*-tree. Two dominant velocity axes (k=2),
	// the paper's default for road traffic.
	idx, err := vpindex.NewVP(sample, vpindex.VPOptions{
		Options: vpindex.Options{Kind: vpindex.TPRStar},
		K:       2,
		Seed:    7,
	})
	if err != nil {
		log.Fatal(err)
	}

	an := idx.Analysis()
	fmt.Println("velocity analysis:")
	for i, d := range an.DVAs {
		fmt.Printf("  DVA %d: axis (%.3f, %.3f), tau %.2f m/ts, %d sample points kept\n",
			i, d.Axis.X, d.Axis.Y, d.Tau, d.Count)
	}
	fmt.Printf("  outliers in sample: %d of %d\n\n", an.TotalOutliers, an.SampleSize)

	// Insert vehicles at time 0: position + velocity + reference time.
	vehicles := []vpindex.Object{
		{ID: 1, Pos: vpindex.V(1000, 5000), Vel: vpindex.V(45, 0.3), T: 0},  // eastbound
		{ID: 2, Pos: vpindex.V(9000, 5000), Vel: vpindex.V(-60, 0.1), T: 0}, // westbound
		{ID: 3, Pos: vpindex.V(5000, 1000), Vel: vpindex.V(0.2, 50), T: 0},  // northbound
		{ID: 4, Pos: vpindex.V(5000, 5000), Vel: vpindex.V(30, 30), T: 0},   // diagonal (outlier)
	}
	for _, v := range vehicles {
		if err := idx.Insert(v); err != nil {
			log.Fatal(err)
		}
	}

	// 1. Time-slice: who is within 1200 m of (5000, 5000) at t=50?
	// (vehicle 2, westbound from x=9000, is at x=6000 by then)
	slice := vpindex.SliceQuery(vpindex.Circle{C: vpindex.V(5000, 5000), R: 1200}, 0, 50)
	ids, err := idx.Search(slice)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("time-slice @t=50, 1.2km around center:   %v\n", ids)

	// 2. Time-interval: who crosses the depot rectangle between t=60..90?
	// (vehicle 1 drives through it eastbound; vehicle 3 crosses northbound)
	interval := vpindex.IntervalQuery(vpindex.R(3000, 4500, 5200, 5500), 0, 60, 90)
	ids, err = idx.Search(interval)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("time-interval t=[60,90], depot rect:      %v\n", ids)

	// 3. Moving range: a patrol zone sweeping east at 20 m/ts.
	moving := vpindex.MovingQuery(vpindex.R(0, 4000, 2000, 6000), vpindex.V(20, 0), 0, 0, 100)
	ids, err = idx.Search(moving)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("moving range t=[0,100], sweeping zone:    %v\n", ids)

	// Vehicle 1 turns north at t=100: update = delete + insert; the index
	// migrates it between DVA partitions automatically.
	turned := vpindex.Object{ID: 1, Pos: vpindex.V(1000+45*100, 5030), Vel: vpindex.V(0.1, 48), T: 100}
	if err := idx.UpdateByID(turned); err != nil {
		log.Fatal(err)
	}
	fmt.Println("\nvehicle 1 turned north (partition migration handled internally)")

	st := idx.Stats()
	fmt.Printf("\nsimulated I/O: %d page reads, %d writes, %d buffer hits\n",
		st.Reads, st.Writes, st.Hits)
}
