// Quickstart: open a velocity-partitioned moving-object Store, report a
// handful of vehicles, run the three predictive query types, and print the
// velocity analysis and I/O counters.
//
// Run with: go run ./examples/quickstart
package main

import (
	"fmt"
	"log"
	"math/rand"

	vpindex "repro"
)

func main() {
	// A workload sample: most vehicles travel along two road directions
	// (east-west and north-south); a few move freely. The analyzer only
	// needs velocities, not positions.
	rng := rand.New(rand.NewSource(1))
	sample := make([]vpindex.Vec2, 0, 2000)
	for i := 0; i < 2000; i++ {
		speed := 20 + rng.Float64()*60
		if rng.Intn(2) == 0 {
			speed = -speed
		}
		switch i % 5 {
		case 0, 1: // east-west
			sample = append(sample, vpindex.V(speed, rng.NormFloat64()))
		case 2, 3: // north-south
			sample = append(sample, vpindex.V(rng.NormFloat64(), speed))
		default: // free movers
			sample = append(sample, vpindex.V(rng.Float64()*100-50, rng.Float64()*100-50))
		}
	}

	// Open a VP-partitioned TPR*-tree Store. Two dominant velocity axes
	// (k=2), the paper's default for road traffic; the upfront sample means
	// the partitions exist from the first report. (Without a sample handy,
	// WithAutoPartition(n) bootstraps the partitions online instead — see
	// examples/fleetmonitor.)
	store, err := vpindex.Open(
		vpindex.WithKind(vpindex.TPRStar),
		vpindex.WithVelocityPartitioning(2),
		vpindex.WithVelocitySample(sample),
		vpindex.WithSeed(7),
	)
	if err != nil {
		log.Fatal(err)
	}

	an, _ := store.Analysis()
	fmt.Println("velocity analysis:")
	for i, d := range an.Frames {
		if d.IsOutlier {
			continue
		}
		fmt.Printf("  DVA %d: axis (%.3f, %.3f), tau %.2f m/ts, %d sample points kept\n",
			i, d.Axis.X, d.Axis.Y, d.Tau, d.Count)
	}
	fmt.Printf("  outliers in sample: %d of %d\n\n", an.TotalOutliers, an.SampleSize)

	// Report vehicles at time 0: position + velocity + reference time. A
	// report is an upsert by ID — the same verb covers first contact and
	// every later location update.
	vehicles := []vpindex.Object{
		{ID: 1, Pos: vpindex.V(1000, 5000), Vel: vpindex.V(45, 0.3), T: 0},  // eastbound
		{ID: 2, Pos: vpindex.V(9000, 5000), Vel: vpindex.V(-60, 0.1), T: 0}, // westbound
		{ID: 3, Pos: vpindex.V(5000, 1000), Vel: vpindex.V(0.2, 50), T: 0},  // northbound
		{ID: 4, Pos: vpindex.V(5000, 5000), Vel: vpindex.V(30, 30), T: 0},   // diagonal (outlier)
	}
	if err := store.ReportBatch(vehicles); err != nil {
		log.Fatal(err)
	}

	// 1. Time-slice: who is within 1200 m of (5000, 5000) at t=50?
	// (vehicle 2, westbound from x=9000, is at x=6000 by then)
	slice := vpindex.SliceQuery(vpindex.Circle{C: vpindex.V(5000, 5000), R: 1200}, 0, 50)
	ids, err := store.Search(slice)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("time-slice @t=50, 1.2km around center:   %v\n", ids)

	// 2. Time-interval: who crosses the depot rectangle between t=60..90?
	// (vehicle 1 drives through it eastbound; vehicle 3 crosses northbound)
	interval := vpindex.IntervalQuery(vpindex.R(3000, 4500, 5200, 5500), 0, 60, 90)
	ids, err = store.Search(interval)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("time-interval t=[60,90], depot rect:      %v\n", ids)

	// 3. Moving range: a patrol zone sweeping east at 20 m/ts.
	moving := vpindex.MovingQuery(vpindex.R(0, 4000, 2000, 6000), vpindex.V(20, 0), 0, 0, 100)
	ids, err = store.Search(moving)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("moving range t=[0,100], sweeping zone:    %v\n", ids)

	// Vehicle 1 turns north at t=100 and simply reports its new state — no
	// old record needed; the Store migrates it between DVA partitions.
	turned := vpindex.Object{ID: 1, Pos: vpindex.V(1000+45*100, 5030), Vel: vpindex.V(0.1, 48), T: 100}
	if err := store.Report(turned); err != nil {
		log.Fatal(err)
	}
	fmt.Println("\nvehicle 1 turned north (partition migration handled internally)")

	// Vehicle 4 goes offline.
	if err := store.Remove(4); err != nil {
		log.Fatal(err)
	}
	cur, _ := store.Get(1)
	fmt.Printf("tracking %d vehicles; vehicle 1 now heading (%.1f, %.1f)\n",
		store.Len(), cur.Vel.X, cur.Vel.Y)

	st := store.Stats()
	fmt.Printf("\nsimulated I/O: %d page reads, %d writes, %d buffer hits\n",
		st.Reads, st.Writes, st.Hits)
}
