package vpindex_test

import (
	"errors"
	"fmt"
	"math"
	"math/rand"
	"sort"
	"sync"
	"testing"
	"time"

	vpindex "repro"
	"repro/internal/model"
)

// storeConfigs enumerates the Store configurations under test. The auto
// variants bootstrap their partitions online partway through each test's
// report stream.
func storeConfigs() map[string][]vpindex.Option {
	domain := vpindex.R(0, 0, 20000, 20000)
	base := func(k vpindex.Kind) []vpindex.Option {
		return []vpindex.Option{
			vpindex.WithKind(k),
			vpindex.WithDomain(domain),
			vpindex.WithBufferPages(30),
		}
	}
	sample := testSample(800, 11)
	return map[string][]vpindex.Option{
		"tpr":        base(vpindex.TPRStar),
		"bx":         base(vpindex.Bx),
		"tpr-vp":     append(base(vpindex.TPRStar), vpindex.WithVelocityPartitioning(2), vpindex.WithVelocitySample(sample), vpindex.WithSeed(5)),
		"bx-vp":      append(base(vpindex.Bx), vpindex.WithVelocityPartitioning(2), vpindex.WithVelocitySample(sample), vpindex.WithSeed(5)),
		"tpr-vpauto": append(base(vpindex.TPRStar), vpindex.WithVelocityPartitioning(2), vpindex.WithAutoPartition(250), vpindex.WithSeed(5)),
		"bx-vpauto":  append(base(vpindex.Bx), vpindex.WithVelocityPartitioning(2), vpindex.WithAutoPartition(250), vpindex.WithTauRefreshInterval(200), vpindex.WithSeed(5)),
	}
}

// testSample synthesizes a two-DVA velocity distribution.
func testSample(n int, seed int64) []vpindex.Vec2 {
	rng := rand.New(rand.NewSource(seed))
	out := make([]vpindex.Vec2, n)
	for i := range out {
		speed := 20 + rng.Float64()*60
		if rng.Intn(2) == 0 {
			speed = -speed
		}
		switch i % 7 {
		case 6: // outlier
			out[i] = vpindex.V(rng.Float64()*120-60, rng.Float64()*120-60)
		case 0, 2, 4:
			out[i] = vpindex.V(speed, rng.NormFloat64()*2)
		default:
			out[i] = vpindex.V(rng.NormFloat64()*2, speed)
		}
	}
	return out
}

// testObject builds a mover whose velocity follows the testSample
// distribution.
func testObject(id int, rng *rand.Rand) vpindex.Object {
	vels := testSample(1, rng.Int63())
	return vpindex.Object{
		ID:  vpindex.ObjectID(id),
		Pos: vpindex.V(rng.Float64()*20000, rng.Float64()*20000),
		Vel: vels[0],
		T:   0,
	}
}

func sortedIDs(ids []vpindex.ObjectID) []vpindex.ObjectID {
	sort.Slice(ids, func(a, b int) bool { return ids[a] < ids[b] })
	return ids
}

// TestStoreRoundTripOracle drives every Store configuration with the same
// randomized Report/Remove stream as a BruteForce oracle and requires
// identical Search results, Get state, and Len at every checkpoint.
func TestStoreRoundTripOracle(t *testing.T) {
	for name, opts := range storeConfigs() {
		t.Run(name, func(t *testing.T) {
			store, err := vpindex.Open(opts...)
			if err != nil {
				t.Fatal(err)
			}
			oracle := model.NewBruteForce()
			rng := rand.New(rand.NewSource(77))

			report := func(o vpindex.Object) {
				t.Helper()
				if err := store.Report(o); err != nil {
					t.Fatalf("report %d: %v", o.ID, err)
				}
				if _, ok := oracle.Get(o.ID); ok {
					_ = oracle.Delete(vpindex.Object{ID: o.ID})
				}
				_ = oracle.Insert(o)
			}
			check := func(now float64) {
				t.Helper()
				queries := []vpindex.RangeQuery{
					vpindex.SliceQuery(vpindex.Circle{C: vpindex.V(rng.Float64()*20000, rng.Float64()*20000), R: 2500}, now, now+20),
					vpindex.IntervalQuery(vpindex.R(2000, 2000, 9000, 9000), now, now+5, now+25),
					vpindex.MovingQuery(vpindex.R(0, 0, 4000, 4000), vpindex.V(30, 10), now, now, now+30),
				}
				for _, q := range queries {
					got, err := store.Search(q)
					if err != nil {
						t.Fatal(err)
					}
					want, err := oracle.Search(q)
					if err != nil {
						t.Fatal(err)
					}
					got, want = sortedIDs(got), sortedIDs(want)
					if fmt.Sprint(got) != fmt.Sprint(want) {
						t.Fatalf("%v at t=%g: got %v want %v", q.Kind, now, got, want)
					}
				}
				if store.Len() != oracle.Len() {
					t.Fatalf("len %d vs oracle %d", store.Len(), oracle.Len())
				}
			}

			// Load 400 objects (crosses the 250-report auto threshold).
			for i := 1; i <= 400; i++ {
				report(testObject(i, rng))
			}
			check(0)
			// Re-report (upsert) a third of them at t=10, remove some,
			// report new ones.
			for i := 1; i <= 400; i += 3 {
				o := testObject(i, rng)
				o.T = 10
				report(o)
			}
			for i := 2; i <= 400; i += 10 {
				if err := store.Remove(vpindex.ObjectID(i)); err != nil {
					t.Fatalf("remove %d: %v", i, err)
				}
				_ = oracle.Delete(vpindex.Object{ID: vpindex.ObjectID(i)})
			}
			for i := 401; i <= 450; i++ {
				o := testObject(i, rng)
				o.T = 10
				report(o)
			}
			check(10)

			// Get agrees with the oracle's record.
			for i := 1; i <= 450; i += 17 {
				g, gok := store.Get(vpindex.ObjectID(i))
				w, wok := oracle.Get(vpindex.ObjectID(i))
				if gok != wok || (gok && g != w) {
					t.Fatalf("get %d: (%v,%v) vs oracle (%v,%v)", i, g, gok, w, wok)
				}
			}

			// kNN agrees with the oracle on distances.
			q := vpindex.KNNQuery{Center: vpindex.V(10000, 10000), K: 10, Now: 10, T: 40}
			got, err := store.SearchKNN(q)
			if err != nil {
				t.Fatal(err)
			}
			want, _ := oracle.SearchKNN(q)
			if len(got) != len(want) {
				t.Fatalf("kNN %d vs %d results", len(got), len(want))
			}
			for i := range got {
				if diff := got[i].Dist - want[i].Dist; diff > 1e-6 || diff < -1e-6 {
					t.Fatalf("kNN %d: dist %g vs %g", i, got[i].Dist, want[i].Dist)
				}
			}
		})
	}
}

// TestStoreAutoPartitionBootstrap pins the cutover semantics: the Store
// stays in staging until exactly the threshold, then migrates every live
// object; Len and Search are consistent on both sides of the cutover.
func TestStoreAutoPartitionBootstrap(t *testing.T) {
	for _, kind := range []vpindex.Kind{vpindex.TPRStar, vpindex.Bx} {
		t.Run(kind.String(), func(t *testing.T) {
			const threshold = 200
			store, err := vpindex.Open(
				vpindex.WithKind(kind),
				vpindex.WithDomain(vpindex.R(0, 0, 20000, 20000)),
				vpindex.WithVelocityPartitioning(2),
				vpindex.WithAutoPartition(threshold),
				vpindex.WithSeed(3),
			)
			if err != nil {
				t.Fatal(err)
			}
			if store.Partitioned() {
				t.Fatal("partitioned before any report")
			}
			if _, ok := store.Analysis(); ok {
				t.Fatal("analysis before bootstrap")
			}

			rng := rand.New(rand.NewSource(9))
			objs := make([]vpindex.Object, threshold+100)
			for i := range objs {
				objs[i] = testObject(i+1, rng)
			}
			q := vpindex.SliceQuery(vpindex.Circle{C: vpindex.V(10000, 10000), R: 6000}, 0, 30)

			// One below the threshold: still staging.
			if err := store.ReportBatch(objs[:threshold-1]); err != nil {
				t.Fatal(err)
			}
			if store.Partitioned() {
				t.Fatal("partitioned below threshold")
			}
			if c, target := store.BootstrapProgress(); c != threshold-1 || target != threshold {
				t.Fatalf("progress %d/%d", c, target)
			}
			beforeIDs, err := store.Search(q)
			if err != nil {
				t.Fatal(err)
			}
			beforeLen := store.Len()

			// The threshold report triggers analysis + live migration.
			if err := store.Report(objs[threshold-1]); err != nil {
				t.Fatal(err)
			}
			if !store.Partitioned() {
				t.Fatal("not partitioned at threshold")
			}
			an, ok := store.Analysis()
			if !ok || an.SampleSize != threshold || an.NumVelocityFrames() != 2 {
				t.Fatalf("analysis after bootstrap: %+v ok=%v", an, ok)
			}
			if got := store.Len(); got != beforeLen+1 {
				t.Fatalf("len across cutover: %d -> %d", beforeLen, got)
			}
			if c, target := store.BootstrapProgress(); c != 0 || target != 0 {
				t.Fatalf("progress after cutover: %d/%d", c, target)
			}
			if n := len(store.Partitions()); n != 3 {
				t.Fatalf("partitions: %d", n)
			}

			// Search sees every pre-cutover object (the threshold report was
			// outside the query's reach only if it matches; recompute via
			// membership instead of equality).
			afterIDs, err := store.Search(q)
			if err != nil {
				t.Fatal(err)
			}
			after := make(map[vpindex.ObjectID]bool, len(afterIDs))
			for _, id := range afterIDs {
				after[id] = true
			}
			for _, id := range beforeIDs {
				if !after[id] {
					t.Fatalf("object %d lost across cutover", id)
				}
			}

			// The tail lands directly in the partitions.
			if err := store.ReportBatch(objs[threshold:]); err != nil {
				t.Fatal(err)
			}
			if store.Len() != len(objs) {
				t.Fatalf("len after tail: %d", store.Len())
			}
		})
	}
}

// TestStoreConcurrentReportSearch exercises the Store's RWMutex under the
// race detector: concurrent writers streaming ID-keyed reports (crossing
// the auto-partition cutover mid-test) while readers run Search, SearchKNN,
// Get and Len.
func TestStoreConcurrentReportSearch(t *testing.T) {
	store, err := vpindex.Open(
		vpindex.WithKind(vpindex.Bx),
		vpindex.WithDomain(vpindex.R(0, 0, 20000, 20000)),
		vpindex.WithVelocityPartitioning(2),
		vpindex.WithAutoPartition(300),
		vpindex.WithTauRefreshInterval(250),
		vpindex.WithSeed(1),
	)
	if err != nil {
		t.Fatal(err)
	}

	const (
		writers       = 4
		readers       = 4
		perWriter     = 300
		idsPer        = 100 // each writer upserts its own ID range repeatedly
		readsPer      = 150
		removalsEvery = 25
	)
	var wg sync.WaitGroup
	errs := make(chan error, writers+readers)

	for w := 0; w < writers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			rng := rand.New(rand.NewSource(int64(100 + w)))
			base := w * idsPer
			for i := 0; i < perWriter; i++ {
				id := base + 1 + rng.Intn(idsPer)
				o := testObject(id, rng)
				o.T = float64(i) / 10
				if err := store.Report(o); err != nil {
					errs <- fmt.Errorf("writer %d: %w", w, err)
					return
				}
				if i%removalsEvery == removalsEvery-1 {
					if err := store.Remove(o.ID); err != nil && !errors.Is(err, vpindex.ErrNotFound) {
						errs <- fmt.Errorf("writer %d remove: %w", w, err)
						return
					}
				}
			}
		}(w)
	}
	for r := 0; r < readers; r++ {
		wg.Add(1)
		go func(r int) {
			defer wg.Done()
			rng := rand.New(rand.NewSource(int64(200 + r)))
			for i := 0; i < readsPer; i++ {
				now := float64(i) / 5
				q := vpindex.SliceQuery(vpindex.Circle{
					C: vpindex.V(rng.Float64()*20000, rng.Float64()*20000), R: 3000,
				}, now, now+10)
				if _, err := store.Search(q); err != nil {
					errs <- fmt.Errorf("reader %d: %w", r, err)
					return
				}
				if _, err := store.SearchKNN(vpindex.KNNQuery{
					Center: vpindex.V(rng.Float64()*20000, rng.Float64()*20000),
					K:      5, Now: now, T: now + 10,
				}); err != nil {
					errs <- fmt.Errorf("reader %d knn: %w", r, err)
					return
				}
				store.Get(vpindex.ObjectID(1 + rng.Intn(writers*idsPer)))
				store.Len()
				store.Partitioned()
			}
		}(r)
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Fatal(err)
	}
	if !store.Partitioned() {
		t.Fatal("concurrent stream never crossed the bootstrap threshold")
	}
	if store.Len() == 0 {
		t.Fatal("store empty after concurrent stream")
	}
}

// nonKNN hides an index's kNN support behind the bare interface.
type nonKNN struct{ model.Index }

// TestStoreTypedErrors checks the errors.Is contract of the public surface.
func TestStoreTypedErrors(t *testing.T) {
	store, err := vpindex.Open(vpindex.WithKind(vpindex.Bx))
	if err != nil {
		t.Fatal(err)
	}
	o := vpindex.Object{ID: 1, Pos: vpindex.V(100, 100), Vel: vpindex.V(5, 5), T: 0}

	if err := store.Remove(1); !errors.Is(err, vpindex.ErrNotFound) {
		t.Fatalf("remove absent: %v", err)
	}
	if err := store.Update(o, o); !errors.Is(err, vpindex.ErrNotFound) {
		t.Fatalf("update absent: %v", err)
	}
	if err := store.Insert(o); err != nil {
		t.Fatal(err)
	}
	if err := store.Insert(o); !errors.Is(err, vpindex.ErrDuplicate) {
		t.Fatalf("duplicate insert: %v", err)
	}
	// Report is an upsert: the same record is never a duplicate.
	if err := store.Report(o); err != nil {
		t.Fatalf("report existing: %v", err)
	}
	if err := store.Remove(1); err != nil {
		t.Fatal(err)
	}
	if err := store.Remove(1); !errors.Is(err, vpindex.ErrNotFound) {
		t.Fatalf("second remove: %v", err)
	}

	// A velocity-partitioned store behaves identically.
	vp, err := vpindex.Open(vpindex.WithVelocitySample(testSample(500, 2)))
	if err != nil {
		t.Fatal(err)
	}
	if !vp.Partitioned() {
		t.Fatal("upfront sample did not partition")
	}
	if err := vp.Insert(o); err != nil {
		t.Fatal(err)
	}
	if err := vp.Insert(o); !errors.Is(err, vpindex.ErrDuplicate) {
		t.Fatalf("vp duplicate insert: %v", err)
	}
	if err := vp.Remove(99); !errors.Is(err, vpindex.ErrNotFound) {
		t.Fatalf("vp remove absent: %v", err)
	}

	// Config validation: an auto-partition sample smaller than k cannot
	// seed the analysis.
	if _, err := vpindex.Open(vpindex.WithVelocityPartitioning(3), vpindex.WithAutoPartition(2)); err == nil {
		t.Fatal("auto sample below k accepted")
	}

	// The deprecated Index wrapper reports kNN-less structures with
	// ErrUnsupported instead of panicking.
	ix := &vpindex.Index{Index: nonKNN{model.NewBruteForce()}}
	if _, err := ix.SearchKNN(vpindex.KNNQuery{Center: vpindex.V(0, 0), K: 1, T: 1}); !errors.Is(err, vpindex.ErrUnsupported) {
		t.Fatalf("kNN on non-kNN index: %v", err)
	}
}

// TestStoreMonitorIntegration wraps a Store with the continuous-query layer
// and drives it exclusively through the ID-keyed report verbs.
func TestStoreMonitorIntegration(t *testing.T) {
	store, err := vpindex.Open(
		vpindex.WithVelocityPartitioning(2),
		vpindex.WithVelocitySample(testSample(500, 4)),
		vpindex.WithSeed(4),
	)
	if err != nil {
		t.Fatal(err)
	}
	mon := vpindex.NewMonitor(store)

	// Watch a disk around (5000, 5000) with no prediction lookahead.
	subID, seed, err := mon.Subscribe(vpindex.Subscription{
		Query: vpindex.SliceQuery(vpindex.Circle{C: vpindex.V(5000, 5000), R: 1000}, 0, 0),
	}, 0)
	if err != nil {
		t.Fatal(err)
	}
	if len(seed) != 0 {
		t.Fatalf("seed events on empty store: %v", seed)
	}

	// Report an object inside the fence: one Enter.
	evs, err := mon.ProcessReport(vpindex.Object{ID: 1, Pos: vpindex.V(5100, 5000), Vel: vpindex.V(1, 0), T: 0})
	if err != nil {
		t.Fatal(err)
	}
	if len(evs) != 1 || evs[0].Kind != vpindex.Enter || evs[0].Sub != subID {
		t.Fatalf("enter events: %v", evs)
	}
	// Re-report it far away: one Leave.
	evs, err = mon.ProcessReport(vpindex.Object{ID: 1, Pos: vpindex.V(15000, 15000), Vel: vpindex.V(1, 0), T: 1})
	if err != nil {
		t.Fatal(err)
	}
	if len(evs) != 1 || evs[0].Kind != vpindex.Leave {
		t.Fatalf("leave events: %v", evs)
	}
	// Report back inside, then remove: Enter then Leave.
	if _, err := mon.ProcessReport(vpindex.Object{ID: 1, Pos: vpindex.V(4900, 5000), Vel: vpindex.V(0, 0), T: 2}); err != nil {
		t.Fatal(err)
	}
	evs, err = mon.ProcessRemove(1)
	if err != nil {
		t.Fatal(err)
	}
	if len(evs) != 1 || evs[0].Kind != vpindex.Leave {
		t.Fatalf("remove events: %v", evs)
	}
	if store.Len() != 0 {
		t.Fatalf("store len after remove: %d", store.Len())
	}
	if _, err := mon.ProcessRemove(1); !errors.Is(err, vpindex.ErrNotFound) {
		t.Fatalf("remove absent via monitor: %v", err)
	}
}

// axisSample synthesizes velocities riding a single axis bundle (angle and
// angle+90°) with small Gaussian cross-axis jitter — a road grid that the
// repartition tests can rotate wholesale.
func axisSample(n int, angle float64, seed int64) []vpindex.Vec2 {
	rng := rand.New(rand.NewSource(seed))
	out := make([]vpindex.Vec2, n)
	for i := range out {
		a := angle
		if i%2 == 1 {
			a += math.Pi / 2
		}
		speed := 30 + rng.Float64()*60
		if rng.Intn(2) == 0 {
			speed = -speed
		}
		dir := vpindex.V(math.Cos(a), math.Sin(a))
		perp := vpindex.V(-dir.Y, dir.X)
		out[i] = dir.Scale(speed).Add(perp.Scale(rng.NormFloat64()))
	}
	return out
}

// axisObject builds a mover whose velocity follows axisSample's rotated
// grid.
func axisObject(id int, angle float64, rng *rand.Rand) vpindex.Object {
	v := axisSample(2, angle, rng.Int63())[id%2]
	return vpindex.Object{
		ID:  vpindex.ObjectID(id),
		Pos: vpindex.V(rng.Float64()*20000, rng.Float64()*20000),
		Vel: v,
		T:   0,
	}
}

// maxAxisAngle returns the largest angle (radians) between any DVA of the
// analysis and the closest axis of the bundle at the given angle.
func maxAxisAngle(t *testing.T, s *vpindex.Store, angle float64) float64 {
	t.Helper()
	an, ok := s.Analysis()
	if !ok {
		t.Fatal("store has no analysis")
	}
	worst := 0.0
	for _, d := range an.Frames {
		if d.IsOutlier {
			continue
		}
		best := math.Pi
		for k := 0; k < 2; k++ {
			a := angle + float64(k)*math.Pi/2
			axis := vpindex.V(math.Cos(a), math.Sin(a))
			cos := math.Abs(d.Axis.Normalize().Dot(axis))
			if cos > 1 {
				cos = 1
			}
			if ang := math.Acos(cos); ang < best {
				best = ang
			}
		}
		if best > worst {
			worst = best
		}
	}
	return worst
}

// TestStoreRepartitionManual drives the full manual repartition path: a
// store partitioned for one axis grid serves a population whose traffic has
// rotated 45°; Repartition must re-analyze the recent-velocity reservoir,
// swap every shard to axes matching the new grid, preserve every record,
// and keep answering queries exactly.
func TestStoreRepartitionManual(t *testing.T) {
	const rotated = math.Pi / 4
	for _, kind := range []vpindex.Kind{vpindex.TPRStar, vpindex.Bx} {
		t.Run(kind.String(), func(t *testing.T) {
			store, err := vpindex.Open(
				vpindex.WithKind(kind),
				vpindex.WithDomain(vpindex.R(0, 0, 20000, 20000)),
				vpindex.WithBufferPages(30),
				vpindex.WithShards(3),
				vpindex.WithVelocityPartitioning(2),
				vpindex.WithVelocitySample(axisSample(600, 0, 8)),
				// Bounded reservoir (no automatic cadence): by analysis time
				// the rings hold only the most recent — rotated — traffic,
				// not the seeded bootstrap sample.
				vpindex.WithRepartitionPolicy(vpindex.RepartitionPolicy{ReservoirSize: 300}),
				vpindex.WithSeed(5),
			)
			if err != nil {
				t.Fatal(err)
			}
			if drift := maxAxisAngle(t, store, 0); drift > 0.15 {
				t.Fatalf("initial axes off the 0° grid by %g rad", drift)
			}

			// The whole fleet reports with rotated velocities.
			rng := rand.New(rand.NewSource(17))
			oracle := model.NewBruteForce()
			for i := 1; i <= 500; i++ {
				o := axisObject(i, rotated, rng)
				if err := store.Report(o); err != nil {
					t.Fatal(err)
				}
				_ = oracle.Insert(o)
			}
			if n := store.Stats().Repartitions; n != 0 {
				t.Fatalf("repartitions before trigger: %d", n)
			}

			if err := store.Repartition(); err != nil {
				t.Fatal(err)
			}
			if err := store.LastMaintenanceError(); err != nil {
				t.Fatalf("maintenance error after successful repartition: %v", err)
			}
			if n := store.Stats().Repartitions; n != 1 {
				t.Fatalf("repartitions after trigger: %d", n)
			}
			if drift := maxAxisAngle(t, store, rotated); drift > 0.15 {
				t.Fatalf("axes off the rotated grid by %g rad after repartition", drift)
			}
			if store.Len() != oracle.Len() {
				t.Fatalf("len %d vs oracle %d across repartition", store.Len(), oracle.Len())
			}
			// Partition sizes reflect the new epoch and sum to the population.
			total := 0
			for _, p := range store.Partitions() {
				total += p.Size
			}
			if total != oracle.Len() {
				t.Fatalf("partition sizes sum to %d, want %d", total, oracle.Len())
			}

			// Every verb still agrees with the oracle.
			for i := 1; i <= 500; i += 13 {
				g, gok := store.Get(vpindex.ObjectID(i))
				w, wok := oracle.Get(vpindex.ObjectID(i))
				if gok != wok || g != w {
					t.Fatalf("get %d after repartition: (%v,%v) vs (%v,%v)", i, g, gok, w, wok)
				}
			}
			for trial := 0; trial < 12; trial++ {
				q := vpindex.SliceQuery(vpindex.Circle{
					C: vpindex.V(rng.Float64()*20000, rng.Float64()*20000), R: 2500,
				}, 0, rng.Float64()*40)
				got, err := store.Search(q)
				if err != nil {
					t.Fatal(err)
				}
				want, _ := oracle.Search(q)
				got, want = sortedIDs(got), sortedIDs(want)
				if fmt.Sprint(got) != fmt.Sprint(want) {
					t.Fatalf("search after repartition: got %v want %v", got, want)
				}
			}
			// Writes keep flowing into the new partitions.
			for i := 501; i <= 550; i++ {
				if err := store.Report(axisObject(i, rotated, rng)); err != nil {
					t.Fatal(err)
				}
			}
			if store.Len() != 550 {
				t.Fatalf("len after post-repartition reports: %d", store.Len())
			}
		})
	}
}

// TestStoreAutoRepartition exercises the automatic drift policy end to end:
// once traffic rotates, the cadence-triggered background check must detect
// the drift, swap the partitions without any write ever failing, and leave
// the store aligned with the new grid.
func TestStoreAutoRepartition(t *testing.T) {
	const rotated = math.Pi / 4
	var (
		hookMu sync.Mutex
		events []vpindex.MaintenanceEvent
	)
	store, err := vpindex.Open(
		vpindex.WithKind(vpindex.Bx),
		vpindex.WithDomain(vpindex.R(0, 0, 20000, 20000)),
		vpindex.WithBufferPages(30),
		vpindex.WithShards(2),
		vpindex.WithVelocityPartitioning(2),
		vpindex.WithVelocitySample(axisSample(400, 0, 8)),
		// The drift threshold must sit below the test's 0.15 rad convergence
		// bound: a first swap fired on a mixed reservoir can land anywhere
		// between the grids, and only drift above the threshold triggers
		// the follow-up swap that corrects it.
		vpindex.WithRepartitionPolicy(vpindex.RepartitionPolicy{
			Every:          150,
			DriftThreshold: 0.12,
			ReservoirSize:  400,
		}),
		vpindex.WithMaintenanceHook(func(ev vpindex.MaintenanceEvent) {
			hookMu.Lock()
			events = append(events, ev)
			hookMu.Unlock()
		}),
		vpindex.WithSeed(5),
	)
	if err != nil {
		t.Fatal(err)
	}

	// Stream rotated traffic until the background checks have swapped the
	// partitions AND the axes have converged on the rotated grid. The first
	// swap can fire on a reservoir still mixed with pre-drift velocities
	// (its axes land in between); as rotated reports keep flowing the
	// reservoir purifies and a follow-up check corrects the axes — the
	// property to pin is convergence, with a generous deadline.
	rng := rand.New(rand.NewSource(33))
	deadline := time.Now().Add(30 * time.Second)
	id := 0
	for store.Stats().Repartitions == 0 || maxAxisAngle(t, store, rotated) > 0.15 {
		if time.Now().After(deadline) {
			t.Fatalf("drift policy never converged: %d swaps, axes %g rad off",
				store.Stats().Repartitions, maxAxisAngle(t, store, rotated))
		}
		for i := 0; i < 150; i++ {
			id++
			if err := store.Report(axisObject(id%800+1, rotated, rng)); err != nil {
				t.Fatalf("report during drift: %v", err)
			}
		}
	}
	// Wait for the in-flight maintenance event to be recorded.
	for time.Now().Before(deadline) {
		hookMu.Lock()
		var swap *vpindex.MaintenanceEvent
		for i := range events {
			if events[i].Op == vpindex.MaintRepartition && events[i].Swapped {
				swap = &events[i]
			}
		}
		hookMu.Unlock()
		if swap != nil {
			if swap.Err != nil {
				t.Fatalf("swap event carries error: %v", swap.Err)
			}
			if swap.Drift <= 0.12 {
				t.Fatalf("swap fired below threshold: drift %g", swap.Drift)
			}
			break
		}
		time.Sleep(5 * time.Millisecond)
	}
	if err := store.LastMaintenanceError(); err != nil {
		t.Fatalf("maintenance error after adaptive swap: %v", err)
	}
	if drift := maxAxisAngle(t, store, rotated); drift > 0.15 {
		t.Fatalf("axes off the rotated grid by %g rad after adaptive swap", drift)
	}
}

// TestStoreMaintenanceFailureDecoupled pins the error contract of ISSUE 3:
// a failing background analysis (here: a reservoir too small to form k
// partitions) must never surface through Report, must be visible via
// LastMaintenanceError and the hook, and must not wedge the repartition
// loop — the cadence keeps re-arming, producing a fresh failed check every
// interval.
func TestStoreMaintenanceFailureDecoupled(t *testing.T) {
	var (
		hookMu   sync.Mutex
		failures int
	)
	store, err := vpindex.Open(
		vpindex.WithKind(vpindex.Bx),
		vpindex.WithDomain(vpindex.R(0, 0, 20000, 20000)),
		vpindex.WithBufferPages(30),
		vpindex.WithShards(1),
		vpindex.WithVelocityPartitioning(2),
		vpindex.WithVelocitySample(axisSample(300, 0, 8)),
		// ReservoirSize 1 < k=2: every analysis must fail.
		vpindex.WithRepartitionPolicy(vpindex.RepartitionPolicy{
			Every:          50,
			DriftThreshold: 0.2,
			ReservoirSize:  1,
		}),
		vpindex.WithMaintenanceHook(func(ev vpindex.MaintenanceEvent) {
			hookMu.Lock()
			if ev.Err != nil {
				failures++
			}
			hookMu.Unlock()
		}),
		vpindex.WithSeed(5),
	)
	if err != nil {
		t.Fatal(err)
	}

	// The manual trigger reports the analysis failure synchronously...
	if err := store.Repartition(); err == nil {
		t.Fatal("repartition with a degenerate reservoir should fail")
	}
	if err := store.LastMaintenanceError(); err == nil {
		t.Fatal("LastMaintenanceError nil after failed repartition")
	}

	// ...but the write path never sees it, however many cadence intervals
	// fire: every Report must return nil, and the failure count must keep
	// growing (the trigger re-arms after each failure).
	rng := rand.New(rand.NewSource(44))
	deadline := time.Now().Add(30 * time.Second)
	id := 0
	for {
		hookMu.Lock()
		n := failures
		hookMu.Unlock()
		if n >= 3 {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("repartition loop wedged: only %d failed checks recorded", n)
		}
		for i := 0; i < 50; i++ {
			id++
			if err := store.Report(axisObject(id%600+1, 0, rng)); err != nil {
				t.Fatalf("report surfaced a maintenance error: %v", err)
			}
		}
	}
	if err := store.LastMaintenanceError(); err == nil {
		t.Fatal("LastMaintenanceError nil while checks keep failing")
	}
	if n := store.Stats().Repartitions; n != 0 {
		t.Fatalf("failed checks still swapped partitions: %d", n)
	}
	if !store.Partitioned() {
		t.Fatal("store lost its partitions over failed maintenance")
	}
}

// TestStoreRepartitionRetiresOldEpochs pins the resource contract of
// repeated swaps: each repartition retires the previous generation's
// buffer pools and frees its indexes' disk pages, so the live pool set and
// the simulated disk stay bounded however many swaps run — while the I/O
// counters stay cumulative and monotonic.
func TestStoreRepartitionRetiresOldEpochs(t *testing.T) {
	store, err := vpindex.Open(
		vpindex.WithKind(vpindex.Bx),
		vpindex.WithDomain(vpindex.R(0, 0, 20000, 20000)),
		vpindex.WithBufferPages(20),
		vpindex.WithShards(2),
		vpindex.WithVelocityPartitioning(2),
		vpindex.WithVelocitySample(axisSample(400, 0, 8)),
		vpindex.WithRepartitionPolicy(vpindex.RepartitionPolicy{ReservoirSize: 400}),
		vpindex.WithSeed(5),
	)
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(71))
	for i := 1; i <= 400; i++ {
		if err := store.Report(axisObject(i, 0, rng)); err != nil {
			t.Fatal(err)
		}
	}
	// 2 shards x (2 DVA + outlier) partitions, staging pools retired.
	wantPools := 2 * 3
	if got := len(store.Pools()); got != wantPools {
		t.Fatalf("live pools after bootstrap: %d, want %d", got, wantPools)
	}
	disk := store.Pools()[0].Disk()

	var pagesAfterFirst int
	prev := store.Stats()
	for swap := 1; swap <= 4; swap++ {
		angle := float64(swap) * math.Pi / 7
		for i := 1; i <= 400; i++ {
			if err := store.Report(axisObject(i, angle, rng)); err != nil {
				t.Fatal(err)
			}
		}
		if err := store.Repartition(); err != nil {
			t.Fatal(err)
		}
		if got := len(store.Pools()); got != wantPools {
			t.Fatalf("live pools after swap %d: %d, want %d", swap, got, wantPools)
		}
		st := store.Stats()
		if st.Reads < prev.Reads || st.Writes < prev.Writes || st.Hits < prev.Hits {
			t.Fatalf("stats regressed across swap %d: %+v -> %+v", swap, prev, st)
		}
		prev = st
		if swap == 1 {
			pagesAfterFirst = disk.NumPages()
		} else if pages := disk.NumPages(); pages > pagesAfterFirst*2 {
			t.Fatalf("disk grows across swaps: %d pages after swap 1, %d after swap %d",
				pagesAfterFirst, pages, swap)
		}
	}
	if n := store.Stats().Repartitions; n != 4 {
		t.Fatalf("repartitions: %d", n)
	}
	if store.Len() != 400 {
		t.Fatalf("population changed across swaps: %d", store.Len())
	}
}
