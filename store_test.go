package vpindex_test

import (
	"errors"
	"fmt"
	"math/rand"
	"sort"
	"sync"
	"testing"

	vpindex "repro"
	"repro/internal/model"
)

// storeConfigs enumerates the Store configurations under test. The auto
// variants bootstrap their partitions online partway through each test's
// report stream.
func storeConfigs() map[string][]vpindex.Option {
	domain := vpindex.R(0, 0, 20000, 20000)
	base := func(k vpindex.Kind) []vpindex.Option {
		return []vpindex.Option{
			vpindex.WithKind(k),
			vpindex.WithDomain(domain),
			vpindex.WithBufferPages(30),
		}
	}
	sample := testSample(800, 11)
	return map[string][]vpindex.Option{
		"tpr":        base(vpindex.TPRStar),
		"bx":         base(vpindex.Bx),
		"tpr-vp":     append(base(vpindex.TPRStar), vpindex.WithVelocityPartitioning(2), vpindex.WithVelocitySample(sample), vpindex.WithSeed(5)),
		"bx-vp":      append(base(vpindex.Bx), vpindex.WithVelocityPartitioning(2), vpindex.WithVelocitySample(sample), vpindex.WithSeed(5)),
		"tpr-vpauto": append(base(vpindex.TPRStar), vpindex.WithVelocityPartitioning(2), vpindex.WithAutoPartition(250), vpindex.WithSeed(5)),
		"bx-vpauto":  append(base(vpindex.Bx), vpindex.WithVelocityPartitioning(2), vpindex.WithAutoPartition(250), vpindex.WithTauRefreshInterval(200), vpindex.WithSeed(5)),
	}
}

// testSample synthesizes a two-DVA velocity distribution.
func testSample(n int, seed int64) []vpindex.Vec2 {
	rng := rand.New(rand.NewSource(seed))
	out := make([]vpindex.Vec2, n)
	for i := range out {
		speed := 20 + rng.Float64()*60
		if rng.Intn(2) == 0 {
			speed = -speed
		}
		switch i % 7 {
		case 6: // outlier
			out[i] = vpindex.V(rng.Float64()*120-60, rng.Float64()*120-60)
		case 0, 2, 4:
			out[i] = vpindex.V(speed, rng.NormFloat64()*2)
		default:
			out[i] = vpindex.V(rng.NormFloat64()*2, speed)
		}
	}
	return out
}

// testObject builds a mover whose velocity follows the testSample
// distribution.
func testObject(id int, rng *rand.Rand) vpindex.Object {
	vels := testSample(1, rng.Int63())
	return vpindex.Object{
		ID:  vpindex.ObjectID(id),
		Pos: vpindex.V(rng.Float64()*20000, rng.Float64()*20000),
		Vel: vels[0],
		T:   0,
	}
}

func sortedIDs(ids []vpindex.ObjectID) []vpindex.ObjectID {
	sort.Slice(ids, func(a, b int) bool { return ids[a] < ids[b] })
	return ids
}

// TestStoreRoundTripOracle drives every Store configuration with the same
// randomized Report/Remove stream as a BruteForce oracle and requires
// identical Search results, Get state, and Len at every checkpoint.
func TestStoreRoundTripOracle(t *testing.T) {
	for name, opts := range storeConfigs() {
		t.Run(name, func(t *testing.T) {
			store, err := vpindex.Open(opts...)
			if err != nil {
				t.Fatal(err)
			}
			oracle := model.NewBruteForce()
			rng := rand.New(rand.NewSource(77))

			report := func(o vpindex.Object) {
				t.Helper()
				if err := store.Report(o); err != nil {
					t.Fatalf("report %d: %v", o.ID, err)
				}
				if _, ok := oracle.Get(o.ID); ok {
					_ = oracle.Delete(vpindex.Object{ID: o.ID})
				}
				_ = oracle.Insert(o)
			}
			check := func(now float64) {
				t.Helper()
				queries := []vpindex.RangeQuery{
					vpindex.SliceQuery(vpindex.Circle{C: vpindex.V(rng.Float64()*20000, rng.Float64()*20000), R: 2500}, now, now+20),
					vpindex.IntervalQuery(vpindex.R(2000, 2000, 9000, 9000), now, now+5, now+25),
					vpindex.MovingQuery(vpindex.R(0, 0, 4000, 4000), vpindex.V(30, 10), now, now, now+30),
				}
				for _, q := range queries {
					got, err := store.Search(q)
					if err != nil {
						t.Fatal(err)
					}
					want, err := oracle.Search(q)
					if err != nil {
						t.Fatal(err)
					}
					got, want = sortedIDs(got), sortedIDs(want)
					if fmt.Sprint(got) != fmt.Sprint(want) {
						t.Fatalf("%v at t=%g: got %v want %v", q.Kind, now, got, want)
					}
				}
				if store.Len() != oracle.Len() {
					t.Fatalf("len %d vs oracle %d", store.Len(), oracle.Len())
				}
			}

			// Load 400 objects (crosses the 250-report auto threshold).
			for i := 1; i <= 400; i++ {
				report(testObject(i, rng))
			}
			check(0)
			// Re-report (upsert) a third of them at t=10, remove some,
			// report new ones.
			for i := 1; i <= 400; i += 3 {
				o := testObject(i, rng)
				o.T = 10
				report(o)
			}
			for i := 2; i <= 400; i += 10 {
				if err := store.Remove(vpindex.ObjectID(i)); err != nil {
					t.Fatalf("remove %d: %v", i, err)
				}
				_ = oracle.Delete(vpindex.Object{ID: vpindex.ObjectID(i)})
			}
			for i := 401; i <= 450; i++ {
				o := testObject(i, rng)
				o.T = 10
				report(o)
			}
			check(10)

			// Get agrees with the oracle's record.
			for i := 1; i <= 450; i += 17 {
				g, gok := store.Get(vpindex.ObjectID(i))
				w, wok := oracle.Get(vpindex.ObjectID(i))
				if gok != wok || (gok && g != w) {
					t.Fatalf("get %d: (%v,%v) vs oracle (%v,%v)", i, g, gok, w, wok)
				}
			}

			// kNN agrees with the oracle on distances.
			q := vpindex.KNNQuery{Center: vpindex.V(10000, 10000), K: 10, Now: 10, T: 40}
			got, err := store.SearchKNN(q)
			if err != nil {
				t.Fatal(err)
			}
			want, _ := oracle.SearchKNN(q)
			if len(got) != len(want) {
				t.Fatalf("kNN %d vs %d results", len(got), len(want))
			}
			for i := range got {
				if diff := got[i].Dist - want[i].Dist; diff > 1e-6 || diff < -1e-6 {
					t.Fatalf("kNN %d: dist %g vs %g", i, got[i].Dist, want[i].Dist)
				}
			}
		})
	}
}

// TestStoreAutoPartitionBootstrap pins the cutover semantics: the Store
// stays in staging until exactly the threshold, then migrates every live
// object; Len and Search are consistent on both sides of the cutover.
func TestStoreAutoPartitionBootstrap(t *testing.T) {
	for _, kind := range []vpindex.Kind{vpindex.TPRStar, vpindex.Bx} {
		t.Run(kind.String(), func(t *testing.T) {
			const threshold = 200
			store, err := vpindex.Open(
				vpindex.WithKind(kind),
				vpindex.WithDomain(vpindex.R(0, 0, 20000, 20000)),
				vpindex.WithVelocityPartitioning(2),
				vpindex.WithAutoPartition(threshold),
				vpindex.WithSeed(3),
			)
			if err != nil {
				t.Fatal(err)
			}
			if store.Partitioned() {
				t.Fatal("partitioned before any report")
			}
			if _, ok := store.Analysis(); ok {
				t.Fatal("analysis before bootstrap")
			}

			rng := rand.New(rand.NewSource(9))
			objs := make([]vpindex.Object, threshold+100)
			for i := range objs {
				objs[i] = testObject(i+1, rng)
			}
			q := vpindex.SliceQuery(vpindex.Circle{C: vpindex.V(10000, 10000), R: 6000}, 0, 30)

			// One below the threshold: still staging.
			if err := store.ReportBatch(objs[:threshold-1]); err != nil {
				t.Fatal(err)
			}
			if store.Partitioned() {
				t.Fatal("partitioned below threshold")
			}
			if c, target := store.BootstrapProgress(); c != threshold-1 || target != threshold {
				t.Fatalf("progress %d/%d", c, target)
			}
			beforeIDs, err := store.Search(q)
			if err != nil {
				t.Fatal(err)
			}
			beforeLen := store.Len()

			// The threshold report triggers analysis + live migration.
			if err := store.Report(objs[threshold-1]); err != nil {
				t.Fatal(err)
			}
			if !store.Partitioned() {
				t.Fatal("not partitioned at threshold")
			}
			an, ok := store.Analysis()
			if !ok || an.SampleSize != threshold || len(an.DVAs) != 2 {
				t.Fatalf("analysis after bootstrap: %+v ok=%v", an, ok)
			}
			if got := store.Len(); got != beforeLen+1 {
				t.Fatalf("len across cutover: %d -> %d", beforeLen, got)
			}
			if c, target := store.BootstrapProgress(); c != 0 || target != 0 {
				t.Fatalf("progress after cutover: %d/%d", c, target)
			}
			if n := len(store.Partitions()); n != 3 {
				t.Fatalf("partitions: %d", n)
			}

			// Search sees every pre-cutover object (the threshold report was
			// outside the query's reach only if it matches; recompute via
			// membership instead of equality).
			afterIDs, err := store.Search(q)
			if err != nil {
				t.Fatal(err)
			}
			after := make(map[vpindex.ObjectID]bool, len(afterIDs))
			for _, id := range afterIDs {
				after[id] = true
			}
			for _, id := range beforeIDs {
				if !after[id] {
					t.Fatalf("object %d lost across cutover", id)
				}
			}

			// The tail lands directly in the partitions.
			if err := store.ReportBatch(objs[threshold:]); err != nil {
				t.Fatal(err)
			}
			if store.Len() != len(objs) {
				t.Fatalf("len after tail: %d", store.Len())
			}
		})
	}
}

// TestStoreConcurrentReportSearch exercises the Store's RWMutex under the
// race detector: concurrent writers streaming ID-keyed reports (crossing
// the auto-partition cutover mid-test) while readers run Search, SearchKNN,
// Get and Len.
func TestStoreConcurrentReportSearch(t *testing.T) {
	store, err := vpindex.Open(
		vpindex.WithKind(vpindex.Bx),
		vpindex.WithDomain(vpindex.R(0, 0, 20000, 20000)),
		vpindex.WithVelocityPartitioning(2),
		vpindex.WithAutoPartition(300),
		vpindex.WithTauRefreshInterval(250),
		vpindex.WithSeed(1),
	)
	if err != nil {
		t.Fatal(err)
	}

	const (
		writers       = 4
		readers       = 4
		perWriter     = 300
		idsPer        = 100 // each writer upserts its own ID range repeatedly
		readsPer      = 150
		removalsEvery = 25
	)
	var wg sync.WaitGroup
	errs := make(chan error, writers+readers)

	for w := 0; w < writers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			rng := rand.New(rand.NewSource(int64(100 + w)))
			base := w * idsPer
			for i := 0; i < perWriter; i++ {
				id := base + 1 + rng.Intn(idsPer)
				o := testObject(id, rng)
				o.T = float64(i) / 10
				if err := store.Report(o); err != nil {
					errs <- fmt.Errorf("writer %d: %w", w, err)
					return
				}
				if i%removalsEvery == removalsEvery-1 {
					if err := store.Remove(o.ID); err != nil && !errors.Is(err, vpindex.ErrNotFound) {
						errs <- fmt.Errorf("writer %d remove: %w", w, err)
						return
					}
				}
			}
		}(w)
	}
	for r := 0; r < readers; r++ {
		wg.Add(1)
		go func(r int) {
			defer wg.Done()
			rng := rand.New(rand.NewSource(int64(200 + r)))
			for i := 0; i < readsPer; i++ {
				now := float64(i) / 5
				q := vpindex.SliceQuery(vpindex.Circle{
					C: vpindex.V(rng.Float64()*20000, rng.Float64()*20000), R: 3000,
				}, now, now+10)
				if _, err := store.Search(q); err != nil {
					errs <- fmt.Errorf("reader %d: %w", r, err)
					return
				}
				if _, err := store.SearchKNN(vpindex.KNNQuery{
					Center: vpindex.V(rng.Float64()*20000, rng.Float64()*20000),
					K:      5, Now: now, T: now + 10,
				}); err != nil {
					errs <- fmt.Errorf("reader %d knn: %w", r, err)
					return
				}
				store.Get(vpindex.ObjectID(1 + rng.Intn(writers*idsPer)))
				store.Len()
				store.Partitioned()
			}
		}(r)
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Fatal(err)
	}
	if !store.Partitioned() {
		t.Fatal("concurrent stream never crossed the bootstrap threshold")
	}
	if store.Len() == 0 {
		t.Fatal("store empty after concurrent stream")
	}
}

// nonKNN hides an index's kNN support behind the bare interface.
type nonKNN struct{ model.Index }

// TestStoreTypedErrors checks the errors.Is contract of the public surface.
func TestStoreTypedErrors(t *testing.T) {
	store, err := vpindex.Open(vpindex.WithKind(vpindex.Bx))
	if err != nil {
		t.Fatal(err)
	}
	o := vpindex.Object{ID: 1, Pos: vpindex.V(100, 100), Vel: vpindex.V(5, 5), T: 0}

	if err := store.Remove(1); !errors.Is(err, vpindex.ErrNotFound) {
		t.Fatalf("remove absent: %v", err)
	}
	if err := store.Update(o, o); !errors.Is(err, vpindex.ErrNotFound) {
		t.Fatalf("update absent: %v", err)
	}
	if err := store.Insert(o); err != nil {
		t.Fatal(err)
	}
	if err := store.Insert(o); !errors.Is(err, vpindex.ErrDuplicate) {
		t.Fatalf("duplicate insert: %v", err)
	}
	// Report is an upsert: the same record is never a duplicate.
	if err := store.Report(o); err != nil {
		t.Fatalf("report existing: %v", err)
	}
	if err := store.Remove(1); err != nil {
		t.Fatal(err)
	}
	if err := store.Remove(1); !errors.Is(err, vpindex.ErrNotFound) {
		t.Fatalf("second remove: %v", err)
	}

	// A velocity-partitioned store behaves identically.
	vp, err := vpindex.Open(vpindex.WithVelocitySample(testSample(500, 2)))
	if err != nil {
		t.Fatal(err)
	}
	if !vp.Partitioned() {
		t.Fatal("upfront sample did not partition")
	}
	if err := vp.Insert(o); err != nil {
		t.Fatal(err)
	}
	if err := vp.Insert(o); !errors.Is(err, vpindex.ErrDuplicate) {
		t.Fatalf("vp duplicate insert: %v", err)
	}
	if err := vp.Remove(99); !errors.Is(err, vpindex.ErrNotFound) {
		t.Fatalf("vp remove absent: %v", err)
	}

	// Config validation: an auto-partition sample smaller than k cannot
	// seed the analysis.
	if _, err := vpindex.Open(vpindex.WithVelocityPartitioning(3), vpindex.WithAutoPartition(2)); err == nil {
		t.Fatal("auto sample below k accepted")
	}

	// The deprecated Index wrapper reports kNN-less structures with
	// ErrUnsupported instead of panicking.
	ix := &vpindex.Index{Index: nonKNN{model.NewBruteForce()}}
	if _, err := ix.SearchKNN(vpindex.KNNQuery{Center: vpindex.V(0, 0), K: 1, T: 1}); !errors.Is(err, vpindex.ErrUnsupported) {
		t.Fatalf("kNN on non-kNN index: %v", err)
	}
}

// TestStoreMonitorIntegration wraps a Store with the continuous-query layer
// and drives it exclusively through the ID-keyed report verbs.
func TestStoreMonitorIntegration(t *testing.T) {
	store, err := vpindex.Open(
		vpindex.WithVelocityPartitioning(2),
		vpindex.WithVelocitySample(testSample(500, 4)),
		vpindex.WithSeed(4),
	)
	if err != nil {
		t.Fatal(err)
	}
	mon := vpindex.NewMonitor(store)

	// Watch a disk around (5000, 5000) with no prediction lookahead.
	subID, seed, err := mon.Subscribe(vpindex.Subscription{
		Query: vpindex.SliceQuery(vpindex.Circle{C: vpindex.V(5000, 5000), R: 1000}, 0, 0),
	}, 0)
	if err != nil {
		t.Fatal(err)
	}
	if len(seed) != 0 {
		t.Fatalf("seed events on empty store: %v", seed)
	}

	// Report an object inside the fence: one Enter.
	evs, err := mon.ProcessReport(vpindex.Object{ID: 1, Pos: vpindex.V(5100, 5000), Vel: vpindex.V(1, 0), T: 0})
	if err != nil {
		t.Fatal(err)
	}
	if len(evs) != 1 || evs[0].Kind != vpindex.Enter || evs[0].Sub != subID {
		t.Fatalf("enter events: %v", evs)
	}
	// Re-report it far away: one Leave.
	evs, err = mon.ProcessReport(vpindex.Object{ID: 1, Pos: vpindex.V(15000, 15000), Vel: vpindex.V(1, 0), T: 1})
	if err != nil {
		t.Fatal(err)
	}
	if len(evs) != 1 || evs[0].Kind != vpindex.Leave {
		t.Fatalf("leave events: %v", evs)
	}
	// Report back inside, then remove: Enter then Leave.
	if _, err := mon.ProcessReport(vpindex.Object{ID: 1, Pos: vpindex.V(4900, 5000), Vel: vpindex.V(0, 0), T: 2}); err != nil {
		t.Fatal(err)
	}
	evs, err = mon.ProcessRemove(1)
	if err != nil {
		t.Fatal(err)
	}
	if len(evs) != 1 || evs[0].Kind != vpindex.Leave {
		t.Fatalf("remove events: %v", evs)
	}
	if store.Len() != 0 {
		t.Fatalf("store len after remove: %d", store.Len())
	}
	if _, err := mon.ProcessRemove(1); !errors.Is(err, vpindex.ErrNotFound) {
		t.Fatalf("remove absent via monitor: %v", err)
	}
}
