package vpindex

import (
	"fmt"
	"math"
	"sort"
	"sync"
	"sync/atomic"

	"repro/internal/core"
	"repro/internal/monitor"
	"repro/internal/parallel"
	"repro/internal/wal"
)

// This file is the Store-native continuous-query engine: standing
// subscriptions evaluated incrementally as location reports stream in,
// without re-serializing the sharded write path through a wrapper mutex.
//
// # Architecture
//
// The engine composes the internal/monitor evaluation core three ways:
//
//   - The subscription registry (the Subscription templates plus the coarse
//     spatial filter) is read-mostly state under one RWMutex: every report
//     evaluation takes the read lock, only Subscribe/Unsubscribe and filter
//     rebuilds take the write lock.
//   - Result-set membership is sharded by ObjectID with the same hash as
//     the Store's shards: each evaluation shard owns a monitor.ResultSet
//     under its own mutex, so reports routed to different Store shards
//     evaluate their subscriptions genuinely in parallel.
//   - The coarse filter (internal/monitor.Filter) keeps one grid per
//     velocity class — one per DVA of the current partition epoch plus an
//     isotropic catch-all — so a report only exact-tests the subscriptions
//     whose horizon-expanded region could contain it. The per-partition τ
//     makes that expansion near-linear in the horizon instead of quadratic
//     in the global maximum speed: the VP analysis paying off a second
//     time, now on the continuous-query path. The Store re-seeds the
//     filter's classes after every bootstrap cutover and repartition swap.
//
// Deltas are computed outside the shard locks, from the records the write
// path just applied: a write verb applies its records under the shard lock,
// releases it, and only then reconciles the subscription state. Result sets
// therefore survive repartition and epoch swaps untouched — they reference
// ObjectIDs, not index internals — and a swap never blocks evaluation.
//
// # Ordering and concurrency semantics
//
// Every evaluation batch (one Report, one ReportBatch, one Refresh, one
// Subscribe seed) emits its deltas as a single batch sorted by
// Sub → ID → Kind — the same deterministic contract the monitor package
// established. Batches from concurrent callers interleave in an
// unspecified order. Reports for a single object issued from different
// goroutines may be evaluated in either order (last evaluation wins), and
// a RefreshSubscriptions or Subscribe running concurrently with reports
// applies a query snapshot that may predate the newest of them — either
// way a membership can transiently reflect the earlier state, and the
// next evaluation of the object (or the next quiescent refresh)
// converges it. Drive reports for one object from one goroutine and
// don't overlap refreshes with reports — the differential oracle's
// regime — and streams are exact.

// BackpressurePolicy says what an event emission does when the Events()
// channel buffer is full.
type BackpressurePolicy int

const (
	// BlockOnFull makes the emitting write verb block until the consumer
	// drains the channel: lossless, and the natural back-pressure choice
	// when every event must be observed. A consumer that stops reading
	// stalls the write path.
	BlockOnFull BackpressurePolicy = iota
	// DropOldest drops the oldest buffered events to make room: the write
	// path never blocks on a slow consumer, at the cost of losing the
	// oldest deltas. DroppedEvents counts the losses.
	DropOldest
)

// DefaultEventBuffer is the Events() channel capacity used when
// WithEventBuffer is not given.
const DefaultEventBuffer = 1024

// eventStream is the async delivery channel behind Events(). The mutex
// serializes emitters so one batch's events are contiguous in the channel.
type eventStream struct {
	mu     sync.Mutex
	ch     chan MonitorEvent
	policy BackpressurePolicy
}

// subShard is one evaluation shard: the memberships of the objects whose
// IDs hash here.
type subShard struct {
	mu sync.Mutex
	rs *monitor.ResultSet
}

// subEngine is the Store's subscription engine, created lazily by the
// first Subscribe or Events call.
type subEngine struct {
	store *Store

	// regMu guards the subscription registry: subs, filter, nextID. Report
	// evaluation holds it shared; Subscribe/Unsubscribe/SetClasses/Grow
	// hold it exclusively. Lock order: regMu before any subShard.mu.
	regMu  sync.RWMutex
	subs   map[SubscriptionID]Subscription
	filter *monitor.Filter
	nextID SubscriptionID

	// nsubs lets the write-path hook skip evaluation entirely while no
	// subscriptions exist.
	nsubs atomic.Int64

	// clock is the engine's monotonic evaluation clock (float64 bits),
	// advanced by report timestamps and the explicit now of
	// Subscribe/RefreshSubscriptions.
	clock atomic.Uint64

	shards []subShard

	stream  atomic.Pointer[eventStream]
	dropped atomic.Int64

	// notePool recycles noteBatch's per-shard delta scratch (see
	// noteScratch) so sustained batched ingest does not allocate two
	// slices per batch.
	notePool sync.Pool
}

// noteScratch is noteBatch's pooled per-shard scratch: the per-shard event
// and filter-growth slices the parallel reconcile writes into before the
// merge. The inner slices are nilled on return to the pool — they alias
// reconcile results that escape into the merged batch.
type noteScratch struct {
	per   [][]MonitorEvent
	grows [][]Vec2
}

func newSubEngine(s *Store) *subEngine {
	e := &subEngine{
		store:  s,
		subs:   make(map[SubscriptionID]Subscription),
		filter: monitor.NewFilter(s.cfg.base.Domain, 0),
		shards: make([]subShard, len(s.shards)),
	}
	for i := range e.shards {
		e.shards[i].rs = monitor.NewResultSet()
	}
	return e
}

// engine returns the Store's subscription engine, creating it on first use.
func (s *Store) engine() *subEngine {
	if e := s.subEng.Load(); e != nil {
		return e
	}
	e := newSubEngine(s)
	if !s.subEng.CompareAndSwap(nil, e) {
		return s.subEng.Load()
	}
	// Created after a bootstrap or with an upfront sample: seed the filter
	// classes from the current analysis.
	s.refreshSubClasses()
	return e
}

// refreshSubClasses re-seeds the engine filter's velocity classes from the
// Store's current analysis. Called with no Store shard locks held — from
// engine creation, after the bootstrap cutover commits, and after a
// repartition swap — because it takes the registry write lock, which report
// evaluation holds shared while reading shard state.
func (s *Store) refreshSubClasses() {
	e := s.subEng.Load()
	if e == nil {
		return
	}
	an, ok := s.Analysis()
	if !ok {
		return
	}
	// Only DVA frames carry a useful anisotropy bound; speed bands and the
	// unpartitioned objective leave the filter on its isotropic catch-all.
	classes := make([]monitor.VelocityClass, 0, len(an.Frames))
	if an.Kind == core.KindDVA {
		for _, f := range an.Frames {
			if f.IsOutlier {
				continue
			}
			classes = append(classes, monitor.VelocityClass{Axis: f.Axis, Perp: f.Tau})
		}
	}
	e.regMu.Lock()
	e.filter.SetClasses(classes, e.subs)
	e.regMu.Unlock()
}

// advance moves the engine clock monotonically forward and returns the
// resulting clock value.
func (e *subEngine) advance(t float64) float64 {
	for {
		cur := e.clock.Load()
		c := math.Float64frombits(cur)
		if t <= c {
			return c
		}
		if e.clock.CompareAndSwap(cur, math.Float64bits(t)) {
			return t
		}
	}
}

func (e *subEngine) now() float64 { return math.Float64frombits(e.clock.Load()) }

// reconcileShard evaluates a group of applied records (present == true) or
// removed IDs against the subscriptions, under the registry read lock and
// the group's evaluation-shard mutex. It returns the raw (unsorted) deltas
// plus any velocities the filter's online bounds did not cover yet; the
// caller sorts, emits, and grows the filter.
func (e *subEngine) reconcileShard(si int, objs []Object, removed []ObjectID, now float64) (evs []MonitorEvent, grow []Vec2) {
	e.regMu.RLock()
	defer e.regMu.RUnlock()
	if len(e.subs) == 0 {
		return nil, nil
	}
	sh := &e.shards[si]
	sh.mu.Lock()
	defer sh.mu.Unlock()
	for _, o := range objs {
		cands, ok := e.filter.Candidates(o, now)
		if !ok {
			grow = append(grow, o.Vel)
		}
		evs = append(evs, sh.rs.Reconcile(o.ID, o, true, now, cands, !ok, e.subs)...)
	}
	for _, id := range removed {
		evs = append(evs, sh.rs.Reconcile(id, Object{}, false, now, nil, false, nil)...)
	}
	return evs, grow
}

// growFilter raises the filter's online velocity bounds to cover the given
// velocities and rebuilds the affected class grids.
func (e *subEngine) growFilter(vs []Vec2) {
	if len(vs) == 0 {
		return
	}
	e.regMu.Lock()
	for _, v := range vs {
		e.filter.Grow(v, e.subs)
	}
	e.regMu.Unlock()
}

// emit delivers one sorted delta batch to the Events() stream, if one has
// been opened. The stream mutex keeps the batch contiguous.
func (e *subEngine) emit(evs []MonitorEvent) {
	if len(evs) == 0 {
		return
	}
	st := e.stream.Load()
	if st == nil {
		return
	}
	st.mu.Lock()
	defer st.mu.Unlock()
	for _, ev := range evs {
		if st.policy == BlockOnFull {
			st.ch <- ev
			continue
		}
		select {
		case st.ch <- ev:
			continue
		default:
		}
		// Full: drop the oldest buffered event, then retry once. Emitters
		// are serialized by st.mu and the consumer only makes room, so the
		// retry can only fail if the consumer raced the pop — in which case
		// the event still fits — or not at all.
		select {
		case <-st.ch:
			e.dropped.Add(1)
		default:
		}
		select {
		case st.ch <- ev:
		default:
			e.dropped.Add(1)
		}
	}
}

// noteReport is the write-path hook for a single applied record: advance
// the clock to the report time, reconcile, emit.
func (e *subEngine) noteReport(o Object) {
	if e.nsubs.Load() == 0 {
		return
	}
	now := e.advance(o.T)
	evs, grow := e.reconcileShard(e.store.shardIndex(o.ID), []Object{o}, nil, now)
	monitor.SortEvents(evs)
	e.emit(evs)
	e.growFilter(grow)
}

// noteRemove is the write-path hook for a removed ID: the object leaves
// every result set, at the current clock (a removal carries no timestamp).
func (e *subEngine) noteRemove(id ObjectID) {
	if e.nsubs.Load() == 0 {
		return
	}
	evs, _ := e.reconcileShard(e.store.shardIndex(id), nil, []ObjectID{id}, e.now())
	monitor.SortEvents(evs)
	e.emit(evs)
}

// noteBatch is the write-path hook for ReportBatch: the applied records,
// already grouped by shard. The whole batch is evaluated at one instant —
// the clock after advancing to the batch's largest report time — with the
// shard groups reconciled in parallel and the deltas merged into a single
// sorted batch.
func (e *subEngine) noteBatch(groups [][]Object) {
	if e.nsubs.Load() == 0 {
		return
	}
	tmax := math.Inf(-1)
	total := 0
	for _, g := range groups {
		for _, o := range g {
			if o.T > tmax {
				tmax = o.T
			}
		}
		total += len(g)
	}
	if total == 0 {
		return
	}
	now := e.advance(tmax)
	// The per-shard delta slices are pooled batch to batch (the coalescer
	// turns every drained batch into one of these calls, so this is on the
	// sustained ingest path); only the merged slices below are per-call.
	sc, _ := e.notePool.Get().(*noteScratch)
	if sc == nil || len(sc.per) != len(groups) {
		sc = &noteScratch{
			per:   make([][]MonitorEvent, len(groups)),
			grows: make([][]Vec2, len(groups)),
		}
	}
	_ = parallel.Do(len(groups), 0, func(i int) error {
		if len(groups[i]) == 0 {
			return nil
		}
		sc.per[i], sc.grows[i] = e.reconcileShard(i, groups[i], nil, now)
		return nil
	})
	var evs []MonitorEvent
	var grow []Vec2
	for i := range sc.per {
		evs = append(evs, sc.per[i]...)
		grow = append(grow, sc.grows[i]...)
		sc.per[i], sc.grows[i] = nil, nil
	}
	e.notePool.Put(sc)
	monitor.SortEvents(evs)
	e.emit(evs)
	e.growFilter(grow)
}

// refreshSub re-runs one subscription's query at time now and applies the
// snapshot shard by shard. The registry read lock is held across the
// apply so a racing Unsubscribe (which holds the write lock, then clears
// the shards) can never leave behind memberships for a dead subscription.
func (e *subEngine) refreshSub(id SubscriptionID, now float64) ([]MonitorEvent, error) {
	e.regMu.RLock()
	s, ok := e.subs[id]
	if !ok {
		e.regMu.RUnlock()
		return nil, nil
	}
	e.regMu.RUnlock()
	ids, err := e.store.Search(s.QueryAt(now))
	if err != nil {
		return nil, err
	}
	byShard := make([][]ObjectID, len(e.shards))
	for _, oid := range ids {
		si := e.store.shardIndex(oid)
		byShard[si] = append(byShard[si], oid)
	}
	var evs []MonitorEvent
	e.regMu.RLock()
	defer e.regMu.RUnlock()
	if _, ok := e.subs[id]; !ok {
		return nil, nil // unsubscribed between the search and the apply
	}
	for si := range e.shards {
		sh := &e.shards[si]
		sh.mu.Lock()
		evs = append(evs, sh.rs.ApplySnapshot(id, byShard[si], now)...)
		sh.mu.Unlock()
	}
	monitor.SortEvents(evs)
	return evs, nil
}

// Subscribe registers a standing query on the Store and returns its id
// along with the seed deltas (the initial membership, as Enter events).
// The subscription is validated up front: a negative horizon/window or a
// malformed region template fails immediately. The seed deltas are also
// delivered to the Events() stream, which therefore carries the complete
// membership history of every subscription.
//
// now advances the engine's evaluation clock (monotonically); the seed is
// evaluated at now, like Monitor.Subscribe. Subsequent reports re-evaluate
// the subscription incrementally; call RefreshSubscriptions periodically to
// catch objects drifting in or out of the predicted region purely through
// the passage of time.
func (s *Store) Subscribe(sub Subscription, now float64) (SubscriptionID, []MonitorEvent, error) {
	if err := sub.Validate(); err != nil {
		return 0, nil, err
	}
	if d := s.dur; d != nil && !d.recovering.Load() {
		if herr := s.writeAllowed(); herr != nil {
			return 0, nil, herr
		}
		d.commitMu.RLock()
		id, evs, err := s.subscribeApply(sub, now)
		var (
			lsn  uint64
			werr error
		)
		if err == nil {
			buf := wal.GetBuf()
			*buf = wal.AppendSubscribe((*buf)[:0], id, sub, now)
			lsn, werr = d.wal.Append(wal.TypeSubscribe, *buf)
			wal.PutBuf(buf)
		}
		d.commitMu.RUnlock()
		if err != nil {
			s.noteIOFault(err)
			return 0, nil, err
		}
		if werr != nil {
			s.noteIOFault(werr)
			return 0, nil, werr
		}
		if cerr := d.wal.Commit(lsn); cerr != nil {
			s.noteIOFault(cerr)
			return 0, nil, cerr
		}
		d.noteRecords(s, 1)
		return id, evs, nil
	}
	return s.subscribeApply(sub, now)
}

// subscribeApply is Subscribe's in-memory half: registration plus the seed
// evaluation (rolled back if the seed query fails).
func (s *Store) subscribeApply(sub Subscription, now float64) (SubscriptionID, []MonitorEvent, error) {
	e := s.engine()
	e.advance(now)
	e.regMu.Lock()
	e.nextID++
	id := e.nextID
	e.subs[id] = sub
	e.filter.Add(id, sub)
	e.regMu.Unlock()
	e.nsubs.Add(1)
	evs, err := e.refreshSub(id, now)
	if err != nil {
		e.regMu.Lock()
		delete(e.subs, id)
		e.filter.Remove(id)
		e.regMu.Unlock()
		e.nsubs.Add(-1)
		for si := range e.shards {
			sh := &e.shards[si]
			sh.mu.Lock()
			sh.rs.DropSub(id)
			sh.mu.Unlock()
		}
		return 0, nil, err
	}
	e.emit(evs)
	if d := s.dur; d != nil {
		d.subsDirty.Store(true)
	}
	return id, evs, nil
}

// Unsubscribe removes a standing query and its result set, emitting no
// events. Returns ErrNotFound (errors.Is-able) for an unknown id.
func (s *Store) Unsubscribe(id SubscriptionID) error {
	_, err := s.durableApply(wal.TypeUnsubscribe,
		func(dst []byte) []byte { return wal.AppendUnsubscribe(dst, id) },
		func() (bool, error) { return false, s.unsubscribeApply(id) })
	return err
}

// unsubscribeApply is Unsubscribe's in-memory half.
func (s *Store) unsubscribeApply(id SubscriptionID) error {
	e := s.subEng.Load()
	if e == nil {
		return fmt.Errorf("vpindex: unsubscribe %d: %w", id, ErrNotFound)
	}
	e.regMu.Lock()
	if _, ok := e.subs[id]; !ok {
		e.regMu.Unlock()
		return fmt.Errorf("vpindex: unsubscribe %d: %w", id, ErrNotFound)
	}
	delete(e.subs, id)
	e.filter.Remove(id)
	e.regMu.Unlock()
	e.nsubs.Add(-1)
	for si := range e.shards {
		sh := &e.shards[si]
		sh.mu.Lock()
		sh.rs.DropSub(id)
		sh.mu.Unlock()
	}
	if d := s.dur; d != nil {
		d.subsDirty.Store(true)
	}
	return nil
}

// SubscriptionResults snapshots the current result set of a subscription in
// ascending ObjectID order — deterministic, matching the event-stream
// ordering guarantee. Returns ErrNotFound for an unknown id.
func (s *Store) SubscriptionResults(id SubscriptionID) ([]ObjectID, error) {
	e := s.subEng.Load()
	if e == nil {
		return nil, fmt.Errorf("vpindex: subscription %d: %w", id, ErrNotFound)
	}
	e.regMu.RLock()
	_, ok := e.subs[id]
	e.regMu.RUnlock()
	if !ok {
		return nil, fmt.Errorf("vpindex: subscription %d: %w", id, ErrNotFound)
	}
	var out []ObjectID
	for si := range e.shards {
		sh := &e.shards[si]
		sh.mu.Lock()
		out = append(out, sh.rs.Members(id)...)
		sh.mu.Unlock()
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out, nil
}

// NumSubscriptions returns the number of live standing queries.
func (s *Store) NumSubscriptions() int {
	e := s.subEng.Load()
	if e == nil {
		return 0
	}
	return int(e.nsubs.Load())
}

// RefreshSubscriptions re-runs every subscription's query at the given
// time, emitting the deltas caused purely by the passage of time (objects
// drifting in or out of predicted regions without reporting). The
// subscriptions are refreshed concurrently — each one's query fans out
// across the Store's shards and partitions as usual — and the combined
// deltas form a single batch sorted by Sub → ID → Kind, delivered to the
// Events() stream and returned. On error, deltas of the subscriptions that
// completed are still applied, returned, and streamed.
//
// A refresh overlapping in-flight reports installs a query snapshot that
// may predate them; memberships of exactly those objects can transiently
// regress until their next report or a quiescent refresh re-evaluates
// them (see the concurrency notes at the top of this file).
func (s *Store) RefreshSubscriptions(now float64) ([]MonitorEvent, error) {
	d := s.dur
	if d == nil || d.recovering.Load() || s.subEng.Load() == nil {
		return s.refreshApply(now)
	}
	// A refresh mutates memberships as a function of time alone, so recovery
	// must replay it at the same clock to reproduce the same result sets:
	// it is logged like any other write, and gated like one.
	if herr := s.writeAllowed(); herr != nil {
		return nil, herr
	}
	d.commitMu.RLock()
	evs, err := s.refreshApply(now)
	buf := wal.GetBuf()
	*buf = wal.AppendRefresh((*buf)[:0], now)
	lsn, werr := d.wal.Append(wal.TypeRefresh, *buf)
	wal.PutBuf(buf)
	d.commitMu.RUnlock()
	if werr != nil {
		s.noteIOFault(werr)
		return evs, werr
	}
	if cerr := d.wal.Commit(lsn); cerr != nil {
		s.noteIOFault(cerr)
		return evs, cerr
	}
	d.noteRecords(s, 1)
	return evs, err
}

// refreshApply is RefreshSubscriptions' in-memory half.
func (s *Store) refreshApply(now float64) ([]MonitorEvent, error) {
	e := s.subEng.Load()
	if e == nil {
		return nil, nil
	}
	e.advance(now)
	if d := s.dur; d != nil {
		d.subsDirty.Store(true)
	}
	e.regMu.RLock()
	ids := make([]SubscriptionID, 0, len(e.subs))
	for id := range e.subs {
		ids = append(ids, id)
	}
	e.regMu.RUnlock()
	sort.Slice(ids, func(i, j int) bool { return ids[i] < ids[j] })
	per := make([][]MonitorEvent, len(ids))
	err := parallel.Do(len(ids), s.cfg.searchPar, func(i int) error {
		evs, err := e.refreshSub(ids[i], now)
		if err != nil {
			return err
		}
		per[i] = evs
		return nil
	})
	var evs []MonitorEvent
	for _, p := range per {
		evs = append(evs, p...)
	}
	// Each subscription's deltas are sorted by (ID, Kind) and concatenated
	// in ascending subscription order, so the batch is already globally
	// sorted by Sub → ID → Kind.
	e.emit(evs)
	return evs, err
}

// Events returns the Store's ordered asynchronous event stream: every
// subscription delta — report evaluations, batch evaluations, refreshes,
// and Subscribe seeds — is delivered to it as soon as its batch is
// evaluated, each batch contiguous and sorted by Sub → ID → Kind. The
// channel is created on the first call with the WithEventBuffer capacity
// and back-pressure policy (default: DefaultEventBuffer, BlockOnFull);
// deltas evaluated before the first call are not replayed. The channel is
// never closed; all callers share one channel.
func (s *Store) Events() <-chan MonitorEvent {
	e := s.engine()
	if st := e.stream.Load(); st != nil {
		return st.ch
	}
	st := &eventStream{
		ch:     make(chan MonitorEvent, s.cfg.eventBuf),
		policy: s.cfg.eventPolicy,
	}
	if !e.stream.CompareAndSwap(nil, st) {
		return e.stream.Load().ch
	}
	return st.ch
}

// DroppedEvents returns how many events the DropOldest back-pressure
// policy has discarded because the Events() buffer was full. Always zero
// under BlockOnFull.
func (s *Store) DroppedEvents() int64 {
	e := s.subEng.Load()
	if e == nil {
		return 0
	}
	return e.dropped.Load()
}

// SubscriptionFilterClasses reports how many velocity classes the coarse
// subscription filter currently maintains (the DVA classes of the live
// partition epoch plus the isotropic catch-all), for instrumentation.
func (s *Store) SubscriptionFilterClasses() int {
	e := s.subEng.Load()
	if e == nil {
		return 0
	}
	e.regMu.RLock()
	defer e.regMu.RUnlock()
	return e.filter.NumClasses()
}
