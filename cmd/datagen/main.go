// Command datagen dumps benchmark workload artifacts as CSV for inspection
// or plotting: velocity samples (the scatter plots of Fig. 1b and 10-13 of
// the VP paper), road networks (nodes and edges), initial object
// populations, and update streams.
//
// Usage:
//
//	datagen -what velocities -dataset SA -n 10000 > sa_velocities.csv
//	datagen -what network -dataset CH > ch_network.csv
//	datagen -what objects -dataset NY -n 5000 > ny_objects.csv
//	datagen -what updates -dataset MEL -n 2000 -duration 60 > mel_updates.csv
package main

import (
	"bufio"
	"flag"
	"fmt"
	"os"

	"repro/internal/geom"
	"repro/internal/workload"
)

func main() {
	var (
		what     = flag.String("what", "velocities", "velocities|network|objects|updates")
		dataset  = flag.String("dataset", "SA", "CH|SA|MEL|NY|uniform")
		n        = flag.Int("n", 10000, "objects / sample size")
		duration = flag.Float64("duration", 60, "duration for -what updates (ts)")
		side     = flag.Float64("side", 100000, "domain side length (m)")
		seed     = flag.Int64("seed", 42, "generator seed")
	)
	flag.Parse()

	p := workload.DefaultParams(workload.Dataset(*dataset), *n)
	p.Seed = *seed
	p.Duration = *duration
	p.Domain = geom.R(0, 0, *side, *side)
	p.SampleSize = *n

	gen, err := workload.NewGenerator(p)
	if err != nil {
		fmt.Fprintf(os.Stderr, "datagen: %v\n", err)
		os.Exit(1)
	}
	w := bufio.NewWriter(os.Stdout)
	defer w.Flush()

	switch *what {
	case "velocities":
		fmt.Fprintln(w, "vx,vy")
		for _, v := range gen.VelocitySample(*n) {
			fmt.Fprintf(w, "%g,%g\n", v.X, v.Y)
		}
	case "network":
		net := gen.Network()
		if net == nil {
			fmt.Fprintln(os.Stderr, "datagen: uniform dataset has no network")
			os.Exit(1)
		}
		fmt.Fprintln(w, "x0,y0,x1,y1,limit")
		for a, adj := range net.Adj {
			pa := net.Nodes[a].Pos
			for _, e := range adj {
				if int(e.To) < a {
					continue // each undirected segment once
				}
				pb := net.Nodes[e.To].Pos
				fmt.Fprintf(w, "%g,%g,%g,%g,%g\n", pa.X, pa.Y, pb.X, pb.Y, e.Limit)
			}
		}
	case "objects":
		fmt.Fprintln(w, "id,x,y,vx,vy,t")
		for _, o := range gen.Initial() {
			fmt.Fprintf(w, "%d,%g,%g,%g,%g,%g\n", o.ID, o.Pos.X, o.Pos.Y, o.Vel.X, o.Vel.Y, o.T)
		}
	case "updates":
		fmt.Fprintln(w, "t,id,x,y,vx,vy")
		for {
			ev, ok := gen.NextUpdate()
			if !ok {
				break
			}
			fmt.Fprintf(w, "%g,%d,%g,%g,%g,%g\n",
				ev.T, ev.New.ID, ev.New.Pos.X, ev.New.Pos.Y, ev.New.Vel.X, ev.New.Vel.Y)
		}
	default:
		fmt.Fprintf(os.Stderr, "datagen: unknown -what %q\n", *what)
		os.Exit(1)
	}
}
