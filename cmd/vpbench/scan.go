package main

import (
	"encoding/json"
	"fmt"
	"math/rand"
	"os"
	"runtime"
	"sync"
	"time"

	vpindex "repro"
	"repro/internal/bench"
	"repro/internal/workload"
)

// scanResult is one (engine, shards, goroutines) measurement of the scan
// experiment.
type scanResult struct {
	Engine      string  `json:"engine"` // "legacy" (descent per interval) or "batched" (ScanMany)
	Shards      int     `json:"shards"`
	Goroutines  int     `json:"goroutines"`
	Ops         int     `json:"ops"`
	Seconds     float64 `json:"seconds"`
	OpsPerSec   float64 `json:"ops_per_sec"`
	IOPerSearch float64 `json:"io_reads_per_search"`
	// HitsPerSearch counts buffer-pool hits per query: the page touches the
	// batched leaf walk saves are mostly cached internal nodes, so the
	// engines separate here even when their miss counts are close.
	HitsPerSearch float64 `json:"hits_per_search"`
}

// scanReport is the BENCH_scan.json schema: the query-hot-path datapoint of
// the repo's perf trajectory — the batched leaf-walk scan engine plus the
// lock-striped buffer pool against the per-interval descent baseline.
type scanReport struct {
	Experiment    string       `json:"experiment"`
	Dataset       string       `json:"dataset"`
	Objects       int          `json:"objects"`
	BufferPages   int          `json:"buffer_pages"`
	DiskLatencyUS float64      `json:"disk_latency_us"`
	GoMaxProcs    int          `json:"gomaxprocs"`
	Results       []scanResult `json:"results"`
	// SpeedupBatchedParallel is batched vs legacy search throughput at the
	// full worker count on shards=N — the headline number.
	SpeedupBatchedParallel float64 `json:"speedup_batched_parallel"`
	// SpeedupBatchedSingle is the same ratio single-threaded on shards=1 at
	// zero injected latency (CPU-bound: with latency, a single thread is
	// sleep-bound for either engine and a CPU regression would not show).
	// It must stay >= 1 (no sequential regression).
	SpeedupBatchedSingle float64 `json:"speedup_batched_single"`
	// SpeedupShards is batched-engine throughput at shards=N over shards=1,
	// both at the full worker count (the striped-pool/fan-out axis).
	SpeedupShards float64 `json:"speedup_shards"`
}

// runScan measures the batched leaf-walk scan engine (bptree.ScanMany under
// bxtree.searchBucket) against the legacy per-interval descent path on a
// search-only workload: G goroutines issuing predictive range queries
// against a velocity-partitioned Bx Store with simulated per-page disk
// latency. Engines are toggled by WithLegacyScan — same Store, same data,
// same queries — across shards=1 and shards=N. Results go to stdout and to
// the JSON report at outPath.
func runScan(ds workload.Dataset, sc bench.Scale, seed int64, procs int, latency time.Duration, outPath string) error {
	if procs <= 0 {
		procs = runtime.GOMAXPROCS(0)
		if procs < 8 {
			procs = 8
		}
	}
	prev := runtime.GOMAXPROCS(procs)
	defer runtime.GOMAXPROCS(prev)

	p := workload.DefaultParams(ds, sc.Objects)
	p.Domain = vpindex.R(0, 0, sc.DomainSide, sc.DomainSide)
	p.Duration = sc.Duration
	p.Seed = seed
	gen, err := workload.NewGenerator(p)
	if err != nil {
		return err
	}
	objs := gen.Initial()
	sample := make([]vpindex.Vec2, len(objs))
	for i, o := range objs {
		sample[i] = o.Vel
	}

	// Hold the aggregate page-cache budget constant across the shard axis
	// (each of the shards × 3 pools gets an equal slice), as in the
	// concurrency experiment, so the shards axis isolates lock overlap. The
	// floor gives every pool at least 8 pages at the widest sharding:
	// one-page pools degrade every engine to a miss per page touch, which
	// measures cache starvation rather than the scan path.
	totalPages := sc.Buffer
	if min := procs * 3 * 8; totalPages < min {
		totalPages = min
	}
	rep := scanReport{
		Experiment:    "scan",
		Dataset:       string(ds),
		Objects:       len(objs),
		BufferPages:   totalPages,
		DiskLatencyUS: float64(latency) / float64(time.Microsecond),
		GoMaxProcs:    procs,
	}

	searchOps := 3 * len(objs) / 8
	open := func(engine string, shards int, lat time.Duration) (*vpindex.Store, error) {
		opts := []vpindex.Option{
			vpindex.WithKind(vpindex.Bx),
			vpindex.WithDomain(p.Domain),
			vpindex.WithShards(shards),
			vpindex.WithBufferPages(totalPages / (shards * 3)),
			vpindex.WithDiskLatency(lat),
			vpindex.WithMaxUpdateInterval(p.Duration),
			vpindex.WithVelocityPartitioning(2),
			vpindex.WithVelocitySample(sample),
			vpindex.WithSeed(seed),
		}
		if engine == "legacy" {
			opts = append(opts, vpindex.WithLegacyScan())
		}
		store, err := vpindex.Open(opts...)
		if err != nil {
			return nil, err
		}
		if err := store.ReportBatch(objs); err != nil {
			return nil, err
		}
		return store, nil
	}
	measure := func(store *vpindex.Store, engine string, shards, g, ops int) (scanResult, error) {
		ran, seconds, reads, hits, err := hammerSearch(store, p.Domain, g, ops, seed)
		if err != nil {
			return scanResult{}, err
		}
		r := scanResult{
			Engine:        engine,
			Shards:        shards,
			Goroutines:    g,
			Ops:           ran,
			Seconds:       seconds,
			OpsPerSec:     float64(ran) / seconds,
			IOPerSearch:   float64(reads) / float64(ran),
			HitsPerSearch: float64(hits) / float64(ran),
		}
		rep.Results = append(rep.Results, r)
		fmt.Printf("scan: engine=%-7s shards=%-3d g=%-3d %7d ops, %8.3fs, %9.0f ops/s, %7.1f reads + %8.1f hits /search\n",
			engine, shards, g, ran, seconds, r.OpsPerSec, r.IOPerSearch, r.HitsPerSearch)
		return r, nil
	}

	// Single-threaded axis, zero injected latency: one thread under latency
	// is sleep-bound for either engine (their miss counts match here), so a
	// CPU regression — what this datapoint guards against — would be
	// invisible; measuring CPU-bound makes it the strict test.
	tputSingle := map[string]float64{}
	for _, engine := range []string{"legacy", "batched"} {
		store, err := open(engine, 1, 0)
		if err != nil {
			return err
		}
		r, err := measure(store, engine, 1, 1, searchOps/4)
		if err != nil {
			return err
		}
		tputSingle[engine] = r.OpsPerSec
	}

	// Parallel axis with injected latency: the sleeps overlap across the
	// workers, so throughput is bounded by scan CPU and lock contention —
	// the costs the batched engine and the striped pool attack.
	tput := map[string]map[int]float64{"legacy": {}, "batched": {}}
	for _, shards := range []int{1, procs} {
		for _, engine := range []string{"legacy", "batched"} {
			store, err := open(engine, shards, latency)
			if err != nil {
				return err
			}
			r, err := measure(store, engine, shards, procs, searchOps)
			if err != nil {
				return err
			}
			tput[engine][shards] = r.OpsPerSec
		}
	}
	rep.SpeedupBatchedParallel = tput["batched"][procs] / tput["legacy"][procs]
	rep.SpeedupBatchedSingle = tputSingle["batched"] / tputSingle["legacy"]
	rep.SpeedupShards = tput["batched"][procs] / tput["batched"][1]
	fmt.Printf("scan: batched over legacy: %.2fx at %d workers (shards=%d), %.2fx single-threaded; shards=%d over 1: %.2fx\n\n",
		rep.SpeedupBatchedParallel, procs, procs, rep.SpeedupBatchedSingle, procs, rep.SpeedupShards)

	data, err := json.MarshalIndent(rep, "", "  ")
	if err != nil {
		return err
	}
	if err := os.WriteFile(outPath, append(data, '\n'), 0o644); err != nil {
		return err
	}
	fmt.Printf("scan: wrote %s\n\n", outPath)
	return nil
}

// hammerSearch runs ~ops predictive range queries across g goroutines,
// returning the count actually executed, the wall-clock seconds, and the
// buffer-pool reads (misses) and hits the measured queries incurred. The
// query shape matches the paper's default workload: circular regions with a
// predictive horizon long enough that velocity enlargement dominates the
// scanned key ranges.
func hammerSearch(store *vpindex.Store, domain vpindex.Rect, g, ops int, seed int64) (int, float64, int64, int64, error) {
	var (
		wg      sync.WaitGroup
		errOnce sync.Mutex
		firstE  error
	)
	fail := func(err error) {
		errOnce.Lock()
		if firstE == nil {
			firstE = err
		}
		errOnce.Unlock()
	}
	side := domain.Width()
	per := ops / g
	if per < 1 {
		per = 1
	}
	// Unmeasured warmup: the first queries after a load evict the loader's
	// dirty pages (paying write-back latency) and fault the hot upper tree
	// levels in; neither belongs to the steady-state search cost.
	warm := rand.New(rand.NewSource(seed + 7))
	for i := 0; i < per/4+1; i++ {
		c := vpindex.V(domain.MinX+warm.Float64()*side, domain.MinY+warm.Float64()*domain.Height())
		if _, err := store.Search(vpindex.SliceQuery(vpindex.Circle{C: c, R: side / 40}, 0, 60)); err != nil {
			return 0, 0, 0, 0, err
		}
	}
	before := store.Stats()
	start := time.Now()
	wg.Add(g)
	for w := 0; w < g; w++ {
		go func(w int) {
			defer wg.Done()
			rng := rand.New(rand.NewSource(seed + int64(w)*1000))
			for i := 0; i < per; i++ {
				c := vpindex.V(domain.MinX+rng.Float64()*side, domain.MinY+rng.Float64()*domain.Height())
				q := vpindex.SliceQuery(vpindex.Circle{C: c, R: side / 40}, 0, 60)
				if _, err := store.Search(q); err != nil {
					fail(err)
					return
				}
			}
		}(w)
	}
	wg.Wait()
	seconds := time.Since(start).Seconds()
	after := store.Stats()
	return per * g, seconds, after.Reads - before.Reads, after.Hits - before.Hits, firstE
}
