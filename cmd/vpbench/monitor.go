package main

import (
	"encoding/json"
	"fmt"
	"math/rand"
	"os"
	"runtime"
	"sync"
	"sync/atomic"
	"time"

	vpindex "repro"
	"repro/internal/bench"
	"repro/internal/workload"
)

// monitorResult is one engine's throughput measurement of the continuous-
// query experiment.
type monitorResult struct {
	Engine        string  `json:"engine"` // "store" (native) or "legacy" (NewMonitor wrapper)
	Goroutines    int     `json:"goroutines"`
	Ops           int     `json:"ops"`
	Seconds       float64 `json:"seconds"`
	OpsPerSec     float64 `json:"ops_per_sec"`
	Events        int64   `json:"events"`
	DroppedEvents int64   `json:"dropped_events"`
}

// monitorReport is the BENCH_monitor.json schema: the continuous-query
// datapoint of the repo's perf trajectory — mixed report throughput at K
// standing subscriptions, Store-native subscription engine vs the legacy
// single-lock NewMonitor wrapper.
type monitorReport struct {
	Experiment    string          `json:"experiment"`
	Dataset       string          `json:"dataset"`
	Objects       int             `json:"objects"`
	Subscriptions int             `json:"subscriptions"`
	GoMaxProcs    int             `json:"gomaxprocs"`
	Results       []monitorResult `json:"results"`
	SpeedupMixed  float64         `json:"speedup_mixed"`
}

// runMonitor measures continuous-query serving under a concurrent mixed
// workload (7:1 ID-keyed reports to predictive range searches) with K
// standing subscriptions registered. Both engines run over identically
// configured velocity-partitioned Bx Stores loaded with the same fleet:
//
//   - "legacy" drives every report through NewMonitor(store).ProcessReport —
//     one wrapper mutex re-serializing the sharded write path, and every
//     report exact-tested against all K subscriptions.
//   - "store" drives the same reports through store.Report with the K
//     subscriptions registered Store-natively — evaluation sharded like the
//     write path, and the velocity-class spatial filter reducing each
//     report to the subscriptions it could actually affect — while a
//     consumer goroutine drains the async Events() stream.
//
// Results go to stdout and to the JSON report at outPath.
func runMonitor(ds workload.Dataset, sc bench.Scale, seed int64, procs, subsN int, outPath string) error {
	if procs <= 0 {
		procs = runtime.GOMAXPROCS(0)
		if procs < 8 {
			procs = 8
		}
	}
	prev := runtime.GOMAXPROCS(procs)
	defer runtime.GOMAXPROCS(prev)

	p := workload.DefaultParams(ds, sc.Objects)
	p.Domain = vpindex.R(0, 0, sc.DomainSide, sc.DomainSide)
	p.Duration = sc.Duration
	p.Seed = seed
	gen, err := workload.NewGenerator(p)
	if err != nil {
		return err
	}
	objs := gen.Initial()
	sample := make([]vpindex.Vec2, len(objs))
	for i, o := range objs {
		sample[i] = o.Vel
	}

	// The subscription population: fences spread over the domain, each
	// watching a predictive horizon — the workload of a zone-alerting
	// service with subsN standing zones.
	subRng := rand.New(rand.NewSource(seed + 99))
	mkSub := func() vpindex.Subscription {
		return vpindex.Subscription{
			Query: vpindex.SliceQuery(vpindex.Circle{
				C: vpindex.V(subRng.Float64()*sc.DomainSide, subRng.Float64()*sc.DomainSide),
				R: sc.DomainSide / 50,
			}, 0, 0),
			Horizon: 30,
		}
	}
	subsList := make([]vpindex.Subscription, subsN)
	for i := range subsList {
		subsList[i] = mkSub()
	}

	// Both engines pay the same index cost per report; this experiment
	// isolates the continuous-query evaluation on top of it, so the page
	// cache is sized generously (identically for both) — a thrashing
	// 10-page pool would just dilute the quantity being measured under
	// simulated I/O that the concurrency experiment already covers.
	buffer := sc.Buffer
	if buffer < 64 {
		buffer = 64
	}
	openLoaded := func() (*vpindex.Store, error) {
		store, err := vpindex.Open(
			vpindex.WithKind(vpindex.Bx),
			vpindex.WithDomain(p.Domain),
			vpindex.WithShards(procs),
			vpindex.WithBufferPages(buffer),
			vpindex.WithMaxUpdateInterval(p.Duration),
			vpindex.WithVelocityPartitioning(2),
			vpindex.WithVelocitySample(sample),
			vpindex.WithSeed(seed),
			vpindex.WithEventBuffer(8192, vpindex.DropOldest),
		)
		if err != nil {
			return nil, err
		}
		return store, store.ReportBatch(objs)
	}

	rep := monitorReport{
		Experiment:    "monitor",
		Dataset:       string(ds),
		Objects:       len(objs),
		Subscriptions: subsN,
		GoMaxProcs:    procs,
	}
	totalOps := 2 * len(objs)
	tput := map[string]float64{}

	for _, engine := range []string{"legacy", "store"} {
		store, err := openLoaded()
		if err != nil {
			return err
		}
		var (
			events  atomic.Int64
			report  func(o vpindex.Object) error
			stop    = make(chan struct{})
			drained sync.WaitGroup
		)
		switch engine {
		case "legacy":
			mon := vpindex.NewMonitor(store)
			// Count subscribe seeds too: the store engine delivers its
			// seeds to the Events() stream, so both Events fields cover
			// the same delta population and are comparable.
			for _, s := range subsList {
				_, seed, err := mon.Subscribe(s, 0)
				if err != nil {
					return err
				}
				events.Add(int64(len(seed)))
			}
			report = func(o vpindex.Object) error {
				evs, err := mon.ProcessReport(o)
				events.Add(int64(len(evs)))
				return err
			}
		case "store":
			ch := store.Events()
			drained.Add(1)
			go func() {
				defer drained.Done()
				for {
					select {
					case <-ch:
						events.Add(1)
					case <-stop:
						return
					}
				}
			}()
			for _, s := range subsList {
				if _, _, err := store.Subscribe(s, 0); err != nil {
					return err
				}
			}
			report = store.Report
		}

		ran, seconds, err := hammerMonitor(store, report, objs, procs, totalOps, seed)
		close(stop)
		drained.Wait()
		if err != nil {
			return err
		}
		// Count whatever was still buffered when the consumer stopped.
		if engine == "store" {
			for {
				select {
				case <-store.Events():
					events.Add(1)
					continue
				default:
				}
				break
			}
		}
		r := monitorResult{
			Engine:        engine,
			Goroutines:    procs,
			Ops:           ran,
			Seconds:       seconds,
			OpsPerSec:     float64(ran) / seconds,
			Events:        events.Load(),
			DroppedEvents: store.DroppedEvents(),
		}
		tput[engine] = r.OpsPerSec
		rep.Results = append(rep.Results, r)
		fmt.Printf("monitor: %-6s  %d subs, %7d ops, %8.3fs, %9.0f ops/s, %7d events\n",
			engine, subsN, ran, seconds, r.OpsPerSec, r.Events)
	}
	rep.SpeedupMixed = tput["store"] / tput["legacy"]
	fmt.Printf("monitor: store-native speedup over legacy wrapper: %.2fx mixed\n\n", rep.SpeedupMixed)

	data, err := json.MarshalIndent(rep, "", "  ")
	if err != nil {
		return err
	}
	if err := os.WriteFile(outPath, append(data, '\n'), 0o644); err != nil {
		return err
	}
	fmt.Printf("monitor: wrote %s\n\n", outPath)
	return nil
}

// hammerMonitor runs ~ops operations of the 7:1 report:search mix across g
// goroutines, reporting through the engine-specific report verb and
// searching through the Store directly (searches don't touch subscription
// state on either engine).
func hammerMonitor(store *vpindex.Store, report func(vpindex.Object) error, objs []vpindex.Object, g, ops int, seed int64) (int, float64, error) {
	var (
		wg      sync.WaitGroup
		errOnce sync.Mutex
		firstE  error
	)
	fail := func(err error) {
		errOnce.Lock()
		if firstE == nil {
			firstE = err
		}
		errOnce.Unlock()
	}
	side := 0.0
	for _, o := range objs {
		if o.Pos.X > side {
			side = o.Pos.X
		}
		if o.Pos.Y > side {
			side = o.Pos.Y
		}
	}
	per := ops / g
	if per < 1 {
		per = 1
	}
	start := time.Now()
	wg.Add(g)
	for w := 0; w < g; w++ {
		go func(w int) {
			defer wg.Done()
			rng := rand.New(rand.NewSource(seed + int64(w)*1000))
			for i := 0; i < per; i++ {
				if rng.Intn(8) == 0 {
					// The one-shot queries a zone-alert service interleaves
					// with its report stream: small "who is near this point
					// soon" probes (the standing zones themselves are served
					// by the subscriptions, not by ad-hoc searches).
					c := vpindex.V(rng.Float64()*side, rng.Float64()*side)
					if _, err := store.Search(vpindex.SliceQuery(vpindex.Circle{C: c, R: side / 100}, 0, 30)); err != nil {
						fail(err)
						return
					}
					continue
				}
				o := objs[rng.Intn(len(objs))]
				o.Pos = vpindex.V(rng.Float64()*side, rng.Float64()*side)
				if err := report(o); err != nil {
					fail(err)
					return
				}
			}
		}(w)
	}
	wg.Wait()
	return per * g, time.Since(start).Seconds(), firstE
}
