// Command vpbench regenerates the experiments of "Boosting Moving Object
// Indexing through Velocity Partitioning" (VLDB 2012). Each -exp value
// corresponds to a figure of the paper's Section 6; the output is a table
// with the same series the figure plots.
//
// Usage:
//
//	vpbench -exp fig19                 # all datasets, reduced default scale
//	vpbench -exp fig21 -paper          # Table 1 scale (minutes)
//	vpbench -exp all -objects 10000    # everything, custom scale
//	vpbench -exp fig7 -points fig7.csv # also dump the scatter points
//
// Scale notes: -objects picks the population; the domain side and buffer
// pool scale with it to preserve the paper's object density and
// buffer-to-index ratio (see internal/bench). -paper forces Table 1
// parameters exactly.
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"

	"repro/internal/bench"
	"repro/internal/workload"
)

func main() {
	var (
		exp      = flag.String("exp", "fig19", "experiment: dva|fig7|fig17|fig18|fig19|fig20|fig21|fig22|fig23|fig24|all")
		objects  = flag.Int("objects", 20000, "number of moving objects")
		queries  = flag.Int("queries", 200, "number of range queries")
		duration = flag.Float64("duration", 120, "workload duration (ts)")
		paper    = flag.Bool("paper", false, "use Table 1 scale (100K objects, 240 ts, 100 km domain)")
		seed     = flag.Int64("seed", 42, "workload seed")
		points   = flag.String("points", "", "CSV file for fig7 scatter points")
		dataset  = flag.String("dataset", "CH", "dataset for fig17/dva: CH|SA|MEL|NY|uniform")
	)
	flag.Parse()

	sc := bench.ScaleFor(*objects, *queries, *duration)
	if *paper {
		sc = bench.PaperScale()
	}
	fmt.Printf("scale: %d objects, %d queries, %.0f ts, %.0f m domain, %d buffer pages\n\n",
		sc.Objects, sc.Queries, sc.Duration, sc.DomainSide, sc.Buffer)

	run := func(name string) error {
		switch name {
		case "dva":
			tab, err := bench.RunDVADump(workload.Dataset(*dataset), sc, *seed)
			if err != nil {
				return err
			}
			fmt.Println(tab.Format())
		case "fig7":
			pts, tab, err := bench.RunFig7(sc, *seed)
			if err != nil {
				return err
			}
			fmt.Println(tab.Format())
			if *points != "" {
				if err := writePoints(*points, pts); err != nil {
					return err
				}
				fmt.Printf("wrote %d scatter points to %s\n", len(pts), *points)
			}
		case "fig17":
			for _, ds := range []workload.Dataset{workload.Chicago, workload.SanFrancisco} {
				tab, err := bench.RunFig17(ds, sc, *seed)
				if err != nil {
					return err
				}
				fmt.Println(tab.Format())
			}
		case "fig18":
			tab, err := bench.RunFig18(sc, *seed, 5)
			if err != nil {
				return err
			}
			fmt.Println(tab.Format())
		case "fig19":
			tab, err := bench.RunFig19(sc, *seed)
			if err != nil {
				return err
			}
			fmt.Println(tab.Format())
		case "fig20":
			sizes := []int{sc.Objects, sc.Objects * 2, sc.Objects * 3, sc.Objects * 4, sc.Objects * 5}
			tab, err := bench.RunFig20(sizes, sc, *seed)
			if err != nil {
				return err
			}
			fmt.Println(tab.Format())
		case "fig21":
			tab, err := bench.RunFig21([]float64{20, 40, 60, 80, 100, 120, 140, 160, 180, 200}, sc, *seed)
			if err != nil {
				return err
			}
			fmt.Println(tab.Format())
		case "fig22":
			tab, err := bench.RunFig22([]float64{100, 200, 300, 400, 500, 600, 700, 800, 900, 1000}, sc, *seed)
			if err != nil {
				return err
			}
			fmt.Println(tab.Format())
		case "fig23":
			tab, err := bench.RunFig23([]float64{20, 40, 60, 80, 100, 120}, sc, *seed)
			if err != nil {
				return err
			}
			fmt.Println(tab.Format())
		case "fig24":
			tab, err := bench.RunFig24([]float64{20, 40, 60, 80, 100, 120}, sc, *seed)
			if err != nil {
				return err
			}
			fmt.Println(tab.Format())
		default:
			return fmt.Errorf("unknown experiment %q", name)
		}
		return nil
	}

	names := []string{*exp}
	if *exp == "all" {
		names = []string{"dva", "fig7", "fig17", "fig18", "fig19", "fig20",
			"fig21", "fig22", "fig23", "fig24"}
	}
	for _, n := range names {
		if err := run(n); err != nil {
			fmt.Fprintf(os.Stderr, "vpbench: %s: %v\n", n, err)
			os.Exit(1)
		}
	}
}

func writePoints(path string, pts []bench.ExpansionPoint) error {
	var b strings.Builder
	b.WriteString("series,x,y\n")
	for _, p := range pts {
		fmt.Fprintf(&b, "%s,%g,%g\n", p.Series, p.X, p.Y)
	}
	return os.WriteFile(path, []byte(b.String()), 0o644)
}
