// Command vpbench regenerates the experiments of "Boosting Moving Object
// Indexing through Velocity Partitioning" (VLDB 2012). Each -exp value
// corresponds to a figure of the paper's Section 6; the output is a table
// with the same series the figure plots.
//
// Usage:
//
//	vpbench -exp fig19                 # all datasets, reduced default scale
//	vpbench -exp store                 # production Store facade: batch load,
//	                                   # online VP bootstrap, report throughput
//	vpbench -exp fig21 -paper          # Table 1 scale (minutes)
//	vpbench -exp all -objects 10000    # everything, custom scale
//	vpbench -exp fig7 -points fig7.csv # also dump the scatter points
//
// Scale notes: -objects picks the population; the domain side and buffer
// pool scale with it to preserve the paper's object density and
// buffer-to-index ratio (see internal/bench). -paper forces Table 1
// parameters exactly.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"math"
	"math/rand"
	"os"
	"runtime"
	"strings"
	"sync"
	"time"

	vpindex "repro"
	"repro/internal/bench"
	"repro/internal/workload"
)

func main() {
	var (
		exp      = flag.String("exp", "fig19", "experiment: store|concurrency|scan|drift|partition|monitor|durability|ingest|checkpoint|faults|dva|fig7|fig17|fig18|fig19|fig20|fig21|fig22|fig23|fig24|all")
		objects  = flag.Int("objects", 20000, "number of moving objects")
		queries  = flag.Int("queries", 200, "number of range queries")
		duration = flag.Float64("duration", 120, "workload duration (ts)")
		paper    = flag.Bool("paper", false, "use Table 1 scale (100K objects, 240 ts, 100 km domain)")
		seed     = flag.Int64("seed", 42, "workload seed")
		points   = flag.String("points", "", "CSV file for fig7 scatter points")
		dataset  = flag.String("dataset", "CH", "dataset for fig17/dva: CH|SA|MEL|NY|uniform")
		out      = flag.String("out", "", "JSON output path for -exp concurrency/drift (default BENCH_<exp>.json)")
		procs    = flag.Int("procs", 0, "worker goroutines for -exp concurrency/monitor (0 = max(8, GOMAXPROCS))")
		latency  = flag.Duration("latency", 20*time.Microsecond, "simulated per-page disk latency for -exp concurrency")
		subs     = flag.Int("subs", 1000, "standing subscriptions for -exp monitor")
	)
	flag.Parse()

	sc := bench.ScaleFor(*objects, *queries, *duration)
	if *paper {
		sc = bench.PaperScale()
	}
	fmt.Printf("scale: %d objects, %d queries, %.0f ts, %.0f m domain, %d buffer pages\n\n",
		sc.Objects, sc.Queries, sc.Duration, sc.DomainSide, sc.Buffer)

	// -exp all runs several JSON-emitting experiments; an explicit -out
	// would make them clobber each other, so it only applies to a single
	// -exp and everything falls back to the per-experiment default.
	outFor := func(def string) string {
		if *out != "" && *exp != "all" {
			return *out
		}
		return def
	}
	run := func(name string) error {
		switch name {
		case "store":
			return runStore(workload.Dataset(*dataset), sc, *seed)
		case "concurrency":
			return runConcurrency(workload.Dataset(*dataset), sc, *seed, *procs, *latency, outFor("BENCH_concurrency.json"))
		case "scan":
			return runScan(workload.Dataset(*dataset), sc, *seed, *procs, *latency, outFor("BENCH_scan.json"))
		case "drift":
			return runDrift(sc, *seed, outFor("BENCH_drift.json"))
		case "partition":
			return runPartition(sc, *seed, outFor("BENCH_partition.json"))
		case "monitor":
			return runMonitor(workload.Dataset(*dataset), sc, *seed, *procs, *subs, outFor("BENCH_monitor.json"))
		case "durability":
			return runDurability(workload.Dataset(*dataset), sc, *seed, *procs, outFor("BENCH_durability.json"))
		case "ingest":
			return runIngest(workload.Dataset(*dataset), sc, *seed, *procs, outFor("BENCH_ingest.json"))
		case "checkpoint":
			return runCheckpoint(workload.Dataset(*dataset), sc, *seed, *procs, outFor("BENCH_checkpoint.json"))
		case "faults":
			return runFaults(workload.Dataset(*dataset), sc, *seed, *procs, outFor("BENCH_faults.json"))
		case "dva":
			tab, err := bench.RunDVADump(workload.Dataset(*dataset), sc, *seed)
			if err != nil {
				return err
			}
			fmt.Println(tab.Format())
		case "fig7":
			pts, tab, err := bench.RunFig7(sc, *seed)
			if err != nil {
				return err
			}
			fmt.Println(tab.Format())
			if *points != "" {
				if err := writePoints(*points, pts); err != nil {
					return err
				}
				fmt.Printf("wrote %d scatter points to %s\n", len(pts), *points)
			}
		case "fig17":
			for _, ds := range []workload.Dataset{workload.Chicago, workload.SanFrancisco} {
				tab, err := bench.RunFig17(ds, sc, *seed)
				if err != nil {
					return err
				}
				fmt.Println(tab.Format())
			}
		case "fig18":
			tab, err := bench.RunFig18(sc, *seed, 5)
			if err != nil {
				return err
			}
			fmt.Println(tab.Format())
		case "fig19":
			tab, err := bench.RunFig19(sc, *seed)
			if err != nil {
				return err
			}
			fmt.Println(tab.Format())
		case "fig20":
			sizes := []int{sc.Objects, sc.Objects * 2, sc.Objects * 3, sc.Objects * 4, sc.Objects * 5}
			tab, err := bench.RunFig20(sizes, sc, *seed)
			if err != nil {
				return err
			}
			fmt.Println(tab.Format())
		case "fig21":
			tab, err := bench.RunFig21([]float64{20, 40, 60, 80, 100, 120, 140, 160, 180, 200}, sc, *seed)
			if err != nil {
				return err
			}
			fmt.Println(tab.Format())
		case "fig22":
			tab, err := bench.RunFig22([]float64{100, 200, 300, 400, 500, 600, 700, 800, 900, 1000}, sc, *seed)
			if err != nil {
				return err
			}
			fmt.Println(tab.Format())
		case "fig23":
			tab, err := bench.RunFig23([]float64{20, 40, 60, 80, 100, 120}, sc, *seed)
			if err != nil {
				return err
			}
			fmt.Println(tab.Format())
		case "fig24":
			tab, err := bench.RunFig24([]float64{20, 40, 60, 80, 100, 120}, sc, *seed)
			if err != nil {
				return err
			}
			fmt.Println(tab.Format())
		default:
			return fmt.Errorf("unknown experiment %q", name)
		}
		return nil
	}

	names := []string{*exp}
	if *exp == "all" {
		names = []string{"store", "concurrency", "scan", "drift", "partition", "monitor", "durability", "ingest", "checkpoint", "faults", "dva", "fig7", "fig17", "fig18", "fig19",
			"fig20", "fig21", "fig22", "fig23", "fig24"}
	}
	for _, n := range names {
		if err := run(n); err != nil {
			fmt.Fprintf(os.Stderr, "vpbench: %s: %v\n", n, err)
			os.Exit(1)
		}
	}
}

// runStore exercises the production Store facade end to end: open with
// online auto-partitioning (no upfront sample), batch-load the initial
// population into the staging index, stream ID-keyed location reports until
// the bootstrap cuts over to the velocity partitions, and interleave range
// queries — reporting throughput and per-query I/O on both sides of the
// cutover.
func runStore(ds workload.Dataset, sc bench.Scale, seed int64) error {
	p := workload.DefaultParams(ds, sc.Objects)
	p.Domain = vpindex.R(0, 0, sc.DomainSide, sc.DomainSide)
	p.Duration = sc.Duration
	p.Seed = seed
	gen, err := workload.NewGenerator(p)
	if err != nil {
		return err
	}

	// Cutover lands mid-stream: initial load stays staging, then reports
	// push the sample over the threshold.
	threshold := sc.Objects + sc.Objects/2
	store, err := vpindex.Open(
		vpindex.WithKind(vpindex.Bx),
		vpindex.WithDomain(p.Domain),
		vpindex.WithBufferPages(sc.Buffer),
		vpindex.WithMaxUpdateInterval(p.Duration),
		vpindex.WithVelocityPartitioning(2),
		vpindex.WithAutoPartition(threshold),
		vpindex.WithTauRefreshInterval(10_000),
		vpindex.WithSeed(seed),
	)
	if err != nil {
		return err
	}

	loadStart := time.Now()
	if err := store.ReportBatch(gen.Initial()); err != nil {
		return err
	}
	loadDur := time.Since(loadStart)
	fmt.Printf("store: batch-loaded %d objects into %s in %v (%.0f reports/s)\n",
		store.Len(), store.Name(), loadDur.Round(time.Millisecond),
		float64(store.Len())/loadDur.Seconds())

	queries := gen.Queries(sc.Queries)
	qi := 0
	var qIOStaging, qStaging, qIOPart, qPart int64
	runDue := func(now float64) error {
		for qi < len(queries) && queries[qi].Now <= now {
			before := store.Stats().Reads
			if _, err := store.Search(queries[qi]); err != nil {
				return err
			}
			if store.Partitioned() {
				qIOPart += store.Stats().Reads - before
				qPart++
			} else {
				qIOStaging += store.Stats().Reads - before
				qStaging++
			}
			qi++
		}
		return nil
	}

	reports := 0
	streamStart := time.Now()
	cutover := time.Duration(0)
	for {
		ev, ok := gen.NextUpdate()
		if !ok {
			break
		}
		if err := store.Report(ev.New); err != nil {
			return err
		}
		reports++
		if cutover == 0 && store.Partitioned() {
			cutover = time.Since(streamStart)
			an, _ := store.Analysis()
			fmt.Printf("store: bootstrap after %d streamed reports (t=%.1f): analyzed %d velocities, %d partitions, %d objects migrated\n",
				reports, ev.T, an.SampleSize, len(store.Partitions()), store.Len())
		}
		if err := runDue(ev.T); err != nil {
			return err
		}
	}
	if err := runDue(p.Duration + 1); err != nil {
		return err
	}
	streamDur := time.Since(streamStart)
	fmt.Printf("store: streamed %d reports in %v (%.0f reports/s)\n",
		reports, streamDur.Round(time.Millisecond), float64(reports)/streamDur.Seconds())
	if qStaging > 0 {
		fmt.Printf("store: staging queries      %4d, avg I/O %6.1f\n",
			qStaging, float64(qIOStaging)/float64(qStaging))
	}
	if qPart > 0 {
		fmt.Printf("store: partitioned queries %4d, avg I/O %6.1f\n",
			qPart, float64(qIOPart)/float64(qPart))
	}
	st := store.Stats()
	fmt.Printf("store: total simulated I/O: %d reads / %d writes / %d hits\n\n",
		st.Reads, st.Writes, st.Hits)
	return nil
}

// concurrencyResult is one (shards, workload) measurement of the
// concurrency experiment.
type concurrencyResult struct {
	Shards     int     `json:"shards"`
	Workload   string  `json:"workload"` // "mixed" or "search"
	Goroutines int     `json:"goroutines"`
	Ops        int     `json:"ops"`
	Seconds    float64 `json:"seconds"`
	OpsPerSec  float64 `json:"ops_per_sec"`
}

// concurrencyReport is the BENCH_concurrency.json schema: the repo's
// perf-trajectory datapoint for the sharded Store.
type concurrencyReport struct {
	Experiment    string              `json:"experiment"`
	Dataset       string              `json:"dataset"`
	Objects       int                 `json:"objects"`
	BufferPages   int                 `json:"buffer_pages"`
	DiskLatencyUS float64             `json:"disk_latency_us"`
	GoMaxProcs    int                 `json:"gomaxprocs"`
	Results       []concurrencyResult `json:"results"`
	SpeedupMixed  float64             `json:"speedup_mixed"`
	SpeedupSearch float64             `json:"speedup_search"`
}

// runConcurrency measures the sharded Store against the single-lock
// baseline under a concurrent workload: G goroutines streaming a 7:1 mix of
// ID-keyed reports and predictive range queries (plus a search-only phase),
// against a velocity-partitioned Bx Store with simulated per-page disk
// latency. The Store's performance model is disk-bound, so the scaling win
// is overlap: a single lock serializes every simulated page wait, shards
// overlap them. Results go to stdout and to the JSON report at outPath.
func runConcurrency(ds workload.Dataset, sc bench.Scale, seed int64, procs int, latency time.Duration, outPath string) error {
	if procs <= 0 {
		procs = runtime.GOMAXPROCS(0)
		if procs < 8 {
			procs = 8
		}
	}
	// Let the scheduler actually run the workers concurrently even on small
	// containers; restored afterwards.
	prev := runtime.GOMAXPROCS(procs)
	defer runtime.GOMAXPROCS(prev)

	p := workload.DefaultParams(ds, sc.Objects)
	p.Domain = vpindex.R(0, 0, sc.DomainSide, sc.DomainSide)
	p.Duration = sc.Duration
	p.Seed = seed
	gen, err := workload.NewGenerator(p)
	if err != nil {
		return err
	}
	objs := gen.Initial()
	sample := make([]vpindex.Vec2, len(objs))
	for i, o := range objs {
		sample[i] = o.Vel
	}

	// Hold the aggregate page-cache budget constant across the shard axis
	// (each of the shards × 3 pools gets an equal slice) so the comparison
	// isolates lock overlap instead of also handing the sharded store a
	// bigger cache. The budget must cover at least one page per pool.
	totalPages := sc.Buffer
	if min := procs * 3; totalPages < min {
		totalPages = min
	}
	rep := concurrencyReport{
		Experiment:    "concurrency",
		Dataset:       string(ds),
		Objects:       len(objs),
		BufferPages:   totalPages,
		DiskLatencyUS: float64(latency) / float64(time.Microsecond),
		GoMaxProcs:    procs,
	}
	totalOps := 3 * len(objs)
	searchOps := totalOps / 8

	tput := map[string]map[int]float64{"mixed": {}, "search": {}}
	for _, shards := range []int{1, procs} {
		store, err := vpindex.Open(
			vpindex.WithKind(vpindex.Bx),
			vpindex.WithDomain(p.Domain),
			vpindex.WithShards(shards),
			vpindex.WithBufferPages(totalPages/(shards*3)),
			vpindex.WithDiskLatency(latency),
			vpindex.WithMaxUpdateInterval(p.Duration),
			vpindex.WithVelocityPartitioning(2),
			vpindex.WithVelocitySample(sample),
			vpindex.WithSeed(seed),
		)
		if err != nil {
			return err
		}
		if err := store.ReportBatch(objs); err != nil {
			return err
		}
		for _, wl := range []string{"mixed", "search"} {
			ops := totalOps
			if wl == "search" {
				ops = searchOps
			}
			ran, seconds, err := hammerStore(store, objs, wl, procs, ops, seed)
			if err != nil {
				return err
			}
			r := concurrencyResult{
				Shards:     shards,
				Workload:   wl,
				Goroutines: procs,
				Ops:        ran,
				Seconds:    seconds,
				OpsPerSec:  float64(ran) / seconds,
			}
			tput[wl][shards] = r.OpsPerSec
			rep.Results = append(rep.Results, r)
			fmt.Printf("concurrency: shards=%-3d %-6s %7d ops, %8.3fs, %9.0f ops/s\n",
				shards, wl, ops, seconds, r.OpsPerSec)
		}
	}
	rep.SpeedupMixed = tput["mixed"][procs] / tput["mixed"][1]
	rep.SpeedupSearch = tput["search"][procs] / tput["search"][1]
	fmt.Printf("concurrency: speedup over single lock: mixed %.2fx, search %.2fx\n\n",
		rep.SpeedupMixed, rep.SpeedupSearch)

	data, err := json.MarshalIndent(rep, "", "  ")
	if err != nil {
		return err
	}
	if err := os.WriteFile(outPath, append(data, '\n'), 0o644); err != nil {
		return err
	}
	fmt.Printf("concurrency: wrote %s\n\n", outPath)
	return nil
}

// hammerStore runs ~ops operations of the given workload kind ("mixed" or
// "search") across g goroutines, returning the count actually executed
// (ops rounded to a whole number per goroutine, at least one each) and the
// wall-clock seconds.
func hammerStore(store *vpindex.Store, objs []vpindex.Object, kind string, g, ops int, seed int64) (int, float64, error) {
	var (
		wg      sync.WaitGroup
		errOnce sync.Mutex
		firstE  error
	)
	fail := func(err error) {
		errOnce.Lock()
		if firstE == nil {
			firstE = err
		}
		errOnce.Unlock()
	}
	side := 0.0
	for _, o := range objs {
		if o.Pos.X > side {
			side = o.Pos.X
		}
		if o.Pos.Y > side {
			side = o.Pos.Y
		}
	}
	per := ops / g
	if per < 1 {
		per = 1
	}
	start := time.Now()
	wg.Add(g)
	for w := 0; w < g; w++ {
		go func(w int) {
			defer wg.Done()
			rng := rand.New(rand.NewSource(seed + int64(w)*1000))
			for i := 0; i < per; i++ {
				if kind == "search" || rng.Intn(8) == 0 {
					c := vpindex.V(rng.Float64()*side, rng.Float64()*side)
					if _, err := store.Search(vpindex.SliceQuery(vpindex.Circle{C: c, R: side / 40}, 0, 60)); err != nil {
						fail(err)
						return
					}
					continue
				}
				o := objs[rng.Intn(len(objs))]
				o.Pos = vpindex.V(rng.Float64()*side, rng.Float64()*side)
				if err := store.Report(o); err != nil {
					fail(err)
					return
				}
			}
		}(w)
	}
	wg.Wait()
	return per * g, time.Since(start).Seconds(), firstE
}

// driftWindow is one (store, window) query-I/O measurement of the drift
// experiment.
type driftWindow struct {
	Store       string  `json:"store"`  // "adaptive" or "frozen"
	Window      string  `json:"window"` // "pre", "post" (drifted, before swap), "tail"
	Queries     int     `json:"queries"`
	IOPerSearch float64 `json:"io_per_search"`
}

// driftReport is the BENCH_drift.json schema: the adaptive-repartitioning
// datapoint of the repo's perf trajectory.
type driftReport struct {
	Experiment        string        `json:"experiment"`
	Objects           int           `json:"objects"`
	Reports           int           `json:"reports"`
	Duration          float64       `json:"duration_ts"`
	SwitchT           float64       `json:"switch_ts"`
	AngleDeltaDeg     float64       `json:"angle_delta_deg"`
	Repartitions      int64         `json:"repartitions"`
	SwapObserved      bool          `json:"swap_observed"`
	Windows           []driftWindow `json:"windows"`
	AdaptiveRecovery  float64       `json:"adaptive_recovery_ratio"`  // tail / pre
	FrozenDegradation float64       `json:"frozen_degradation_ratio"` // tail / pre
}

// runDrift measures adaptive repartitioning against a frozen-partition
// baseline. Both stores are velocity-partitioned Bx indexes built from the
// same phase-0 sample; the workload's dominant travel direction rotates
// 45° at half-run (internal/workload.DriftGenerator) — the worst case for
// a two-axis grid, whose axes repeat every 90° — after which the
// frozen store's routing sends everything to its outlier partition while
// the adaptive store's drift policy re-analyzes its recent-velocity
// reservoir and swaps in partitions aligned with the new axis. Query I/O
// per search is sampled in three windows — pre-drift, post-drift before the
// swap, and a tail after the stream (with a warm-up discard, identical for
// both stores) — and the recovery/degradation ratios go to stdout and to
// the JSON report at outPath.
func runDrift(sc bench.Scale, seed int64, outPath string) error {
	// Speeds scale with the domain side so the ratio of velocity expansion
	// to domain size — what determines how much partition alignment matters
	// — is the same at every -objects scale.
	speed := sc.DomainSide * 0.003
	p := workload.DriftParams{
		NumObjects:     sc.Objects,
		Domain:         vpindex.R(0, 0, sc.DomainSide, sc.DomainSide),
		MeanSpeed:      speed,
		SpeedJitter:    speed * 2 / 3,
		PerpJitter:     speed / 20,
		Axes:           2,           // perpendicular road grid, the paper's k=2
		Angle0:         0,           // {0°, 90°} before the switch
		Angle1:         math.Pi / 4, // {45°, 135°} after: worst-case drift
		SwitchT:        sc.Duration / 2,
		Duration:       sc.Duration,
		UpdateInterval: sc.Duration / 8,
		Seed:           seed,
	}
	gen, err := workload.NewDriftGenerator(p)
	if err != nil {
		return err
	}
	sample := gen.VelocitySample(min(sc.Objects, 10_000))

	open := func(adaptive bool) (*vpindex.Store, error) {
		opts := []vpindex.Option{
			vpindex.WithKind(vpindex.Bx),
			vpindex.WithDomain(p.Domain),
			vpindex.WithBufferPages(sc.Buffer),
			vpindex.WithMaxUpdateInterval(p.UpdateInterval),
			vpindex.WithVelocityPartitioning(2),
			vpindex.WithVelocitySample(sample),
			vpindex.WithSeed(seed),
		}
		if adaptive {
			// Re-check once per report round; the reservoir spans one round,
			// so it is fully phase-1 one round after the switch.
			opts = append(opts,
				vpindex.WithRepartitionPolicy(vpindex.RepartitionPolicy{
					Every:          sc.Objects,
					DriftThreshold: 0.3,
					ReservoirSize:  sc.Objects,
				}))
		}
		return vpindex.Open(opts...)
	}
	adaptive, err := open(true)
	if err != nil {
		return err
	}
	frozen, err := open(false)
	if err != nil {
		return err
	}
	if err := adaptive.ReportBatch(gen.Initial()); err != nil {
		return err
	}
	if err := frozen.ReportBatch(gen.Initial()); err != nil {
		return err
	}

	// Per-store, per-window I/O accumulators. A query lands in "pre" before
	// the switch and in "post" after it; the adaptive store's post window
	// closes once its swap is observed (later in-stream queries are dropped
	// — the tail window re-measures both stores cleanly at the end).
	type acc struct{ io, n int64 }
	sum := map[string]map[string]*acc{}
	for _, st := range []string{"adaptive", "frozen"} {
		sum[st] = map[string]*acc{"pre": {}, "post": {}, "tail": {}}
	}
	// The driver is single-threaded, so the only thing that can touch the
	// counters during a Search is the adaptive store's background swap,
	// whose InsertBulk migration reads pages and would be attributed to the
	// query. A measurement is clean only if no swap was in flight on either
	// side of the query and no swap started or finished across it —
	// otherwise run the query but drop the sample.
	measure := func(name string, s *vpindex.Store, q vpindex.RangeQuery, window string) error {
		before := s.Stats()
		if _, err := s.Search(q); err != nil {
			return err
		}
		if window == "" {
			return nil
		}
		after := s.Stats()
		if before.SwapInFlight || after.SwapInFlight ||
			after.PartitionEpoch != before.PartitionEpoch ||
			after.Repartitions != before.Repartitions {
			return nil
		}
		a := sum[name][window]
		a.io += after.Reads - before.Reads
		a.n++
		return nil
	}

	// Predictive horizon at the paper's default ratio (60 ts on a 120 ts
	// update interval): long enough that velocity expansion dominates query
	// I/O, which is exactly what partition alignment buys back.
	radius := sc.DomainSide / 40
	predictive := p.UpdateInterval * 4
	queries := gen.DriftQueries(sc.Queries, 0, p.Duration, radius, predictive, seed+13)
	qi, reports := 0, 0
	swapAt := -1
	for {
		o, ok := gen.Next()
		if !ok {
			break
		}
		if err := adaptive.Report(o); err != nil {
			return err
		}
		if err := frozen.Report(o); err != nil {
			return err
		}
		reports++
		if swapAt < 0 && adaptive.Stats().Repartitions > 0 {
			swapAt = reports
			fmt.Printf("drift: adaptive store repartitioned after %d reports (t=%.1f, switch at t=%.1f)\n",
				reports, o.T, p.SwitchT)
		}
		for qi < len(queries) && queries[qi].Now <= o.T {
			q := queries[qi]
			qi++
			// "pre" is the steady-state pre-drift level: the second half of
			// phase 0, after the trees have matured under churn (a TPR*'s
			// I/O right after load is unrepresentatively low).
			window := ""
			switch {
			case q.Now >= p.SwitchT:
				window = "post"
			case q.Now >= p.SwitchT/2:
				window = "pre"
			}
			aw := window
			if aw == "post" && swapAt >= 0 {
				aw = "" // between swap and tail: not a clean window
			}
			if err := measure("adaptive", adaptive, q, aw); err != nil {
				return err
			}
			if err := measure("frozen", frozen, q, window); err != nil {
				return err
			}
		}
	}

	// Give the last background drift check a moment to land, then measure
	// the tail window at the end of the run: 2x the query budget, first
	// half discarded as page-cache warm-up for both stores alike.
	for w := 0; w < 500 && adaptive.Stats().Repartitions == 0; w++ {
		time.Sleep(10 * time.Millisecond)
	}
	// All tail queries are issued at the stream-end instant, so the time
	// since each object's last report matches the in-stream windows and the
	// comparison isolates partition alignment, not record staleness.
	tail := gen.DriftQueries(2*sc.Queries, p.Duration, p.Duration, radius, predictive, seed+17)
	for i, q := range tail {
		window := "tail"
		if i < len(tail)/2 {
			window = ""
		}
		if err := measure("adaptive", adaptive, q, window); err != nil {
			return err
		}
		if err := measure("frozen", frozen, q, window); err != nil {
			return err
		}
	}

	rep := driftReport{
		Experiment:    "drift",
		Objects:       sc.Objects,
		Reports:       reports,
		Duration:      p.Duration,
		SwitchT:       p.SwitchT,
		AngleDeltaDeg: (p.Angle1 - p.Angle0) * 180 / math.Pi,
		Repartitions:  adaptive.Stats().Repartitions,
		SwapObserved:  adaptive.Stats().Repartitions > 0,
	}
	perSearch := func(st, w string) float64 {
		a := sum[st][w]
		if a.n == 0 {
			return 0
		}
		return float64(a.io) / float64(a.n)
	}
	for _, st := range []string{"adaptive", "frozen"} {
		for _, w := range []string{"pre", "post", "tail"} {
			rep.Windows = append(rep.Windows, driftWindow{
				Store: st, Window: w,
				Queries:     int(sum[st][w].n),
				IOPerSearch: perSearch(st, w),
			})
			fmt.Printf("drift: %-8s %-4s  %4d queries, avg I/O %7.1f\n",
				st, w, sum[st][w].n, perSearch(st, w))
		}
	}
	if pre := perSearch("adaptive", "pre"); pre > 0 {
		rep.AdaptiveRecovery = perSearch("adaptive", "tail") / pre
	}
	if pre := perSearch("frozen", "pre"); pre > 0 {
		rep.FrozenDegradation = perSearch("frozen", "tail") / pre
	}
	fmt.Printf("drift: adaptive recovery %.2fx of pre-drift I/O; frozen baseline at %.2fx\n\n",
		rep.AdaptiveRecovery, rep.FrozenDegradation)

	data, err := json.MarshalIndent(rep, "", "  ")
	if err != nil {
		return err
	}
	if err := os.WriteFile(outPath, append(data, '\n'), 0o644); err != nil {
		return err
	}
	fmt.Printf("drift: wrote %s\n\n", outPath)
	return nil
}

func writePoints(path string, pts []bench.ExpansionPoint) error {
	var b strings.Builder
	b.WriteString("series,x,y\n")
	for _, p := range pts {
		fmt.Fprintf(&b, "%s,%g,%g\n", p.Series, p.X, p.Y)
	}
	return os.WriteFile(path, []byte(b.String()), 0o644)
}
