package main

import (
	"encoding/json"
	"fmt"
	"math/rand"
	"os"
	"runtime"
	"sort"
	"sync"
	"sync/atomic"
	"time"

	vpindex "repro"
	"repro/internal/bench"
	"repro/internal/hist"
	"repro/internal/workload"
)

// ingestCell is one point of the write-coalescing matrix: a writer count ×
// ingest mode × durability combination hammered with single-record Reports.
type ingestCell struct {
	Mode       string  `json:"mode"` // "direct" or "coalesced"
	Durable    bool    `json:"durable"`
	Writers    int     `json:"writers"`
	WindowUsec int64   `json:"window_usec"` // coalescing dwell window (0 = natural batching)
	Ops        int64   `json:"ops"`
	Seconds    float64 `json:"seconds"`
	OpsPerSec  float64 `json:"ops_per_sec"`
	MeanUsec   float64 `json:"mean_usec"`
	P50Usec    float64 `json:"p50_usec"`
	P99Usec    float64 `json:"p99_usec"`
	P999Usec   float64 `json:"p999_usec"`
	// Coalescer telemetry (zero in direct mode): how many leader drains the
	// run produced and how many records each drain carried on average.
	CoalescedBatches int64   `json:"coalesced_batches,omitempty"`
	CoalescedRecords int64   `json:"coalesced_records,omitempty"`
	AvgBatch         float64 `json:"avg_batch,omitempty"`
}

// ingestReport is the BENCH_ingest.json schema. The headline numbers are the
// durable speedups: coalesced ÷ direct sustained Report throughput at each
// writer count under group commit, plus the tail-latency datapoint for a
// nonzero dwell window (p99 must stay bounded by roughly twice the window on
// an in-memory store, where the window is the dominant cost).
type ingestReport struct {
	Experiment       string             `json:"experiment"`
	Dataset          string             `json:"dataset"`
	Objects          int                `json:"objects"`
	GoMaxProcs       int                `json:"gomaxprocs"`
	GroupWindowUsec  int64              `json:"group_window_usec"`
	Cells            []ingestCell       `json:"cells"`
	DurableSpeedup   map[string]float64 `json:"durable_speedup_by_writers"`
	WindowedCell     *ingestCell        `json:"windowed_cell,omitempty"`
	WindowedP99Ratio float64            `json:"windowed_p99_over_window,omitempty"`
}

// runIngest measures the coalesced write path against the direct one:
// concurrent writers issue synchronous single-record Reports (the telemetry
// firehose shape — many producers, one record each) for a fixed wall-clock
// slice, on an in-memory store and on a durable group-commit store. The
// coalesced cells use a zero dwell window: with synchronous writers the
// queue refills while the leader drains, so batches form from arrival
// concurrency alone and idle latency stays at the direct path's. A final
// windowed cell demonstrates the dwell bound: p99 ≲ 2× the window.
func runIngest(ds workload.Dataset, sc bench.Scale, seed int64, procs int, outPath string) error {
	if procs <= 0 {
		procs = runtime.GOMAXPROCS(0)
		if procs < 8 {
			procs = 8
		}
	}
	prev := runtime.GOMAXPROCS(procs)
	defer runtime.GOMAXPROCS(prev)

	p := workload.DefaultParams(ds, sc.Objects)
	p.Domain = vpindex.R(0, 0, sc.DomainSide, sc.DomainSide)
	p.Duration = sc.Duration
	p.Seed = seed
	gen, err := workload.NewGenerator(p)
	if err != nil {
		return err
	}
	objs := gen.Initial()
	sample := make([]vpindex.Vec2, len(objs))
	for i, o := range objs {
		sample[i] = o.Vel
	}

	// Every cell runs cellReps times and reports the median by throughput:
	// single-digit-core CI boxes time-slice the writer pool, and one noisy
	// neighbor or GC stall in a 2-second slice otherwise lands in the
	// committed artifact.
	const (
		groupWindow = 200 * time.Microsecond
		cellTime    = 2 * time.Second
		cellReps    = 3
	)

	open := func(durable bool, coalWindow time.Duration, coalesce bool) (*vpindex.Store, func(), error) {
		opts := []vpindex.Option{
			vpindex.WithKind(vpindex.Bx),
			vpindex.WithDomain(p.Domain),
			vpindex.WithShards(runtime.GOMAXPROCS(0)),
			// A write-path experiment wants the page cache out of the way:
			// at the default scale-derived budget (a handful of pages) every
			// report evicts, and that CPU noise drowns the pipeline effects
			// under measurement.
			vpindex.WithBufferPages(256),
			vpindex.WithDiskLatency(0),
			vpindex.WithVelocityPartitioning(2),
			vpindex.WithVelocitySample(sample),
			vpindex.WithSeed(seed),
		}
		cleanup := func() {}
		if durable {
			dir, err := os.MkdirTemp("", "vpingest-*")
			if err != nil {
				return nil, nil, err
			}
			cleanup = func() { os.RemoveAll(dir) }
			opts = append(opts,
				vpindex.WithDataDir(dir),
				vpindex.WithSyncPolicy(vpindex.SyncGroupCommit(groupWindow)),
			)
		}
		if coalesce {
			opts = append(opts, vpindex.WithWriteCoalescing(coalWindow, vpindex.DefaultCoalesceBatch))
		}
		store, err := vpindex.Open(opts...)
		if err != nil {
			cleanup()
			return nil, nil, err
		}
		if err := store.ReportBatch(objs); err != nil {
			store.Close()
			cleanup()
			return nil, nil, err
		}
		return store, cleanup, nil
	}

	runCell := func(mode string, durable bool, writers int, coalWindow time.Duration) (ingestCell, error) {
		store, cleanup, err := open(durable, coalWindow, mode == "coalesced")
		if err != nil {
			return ingestCell{}, err
		}
		defer cleanup()
		var (
			wg     sync.WaitGroup
			stop   atomic.Bool
			total  atomic.Int64
			firstE atomic.Value
			h      hist.Histogram
		)
		start := time.Now()
		wg.Add(writers)
		for w := 0; w < writers; w++ {
			go func(w int) {
				defer wg.Done()
				rng := rand.New(rand.NewSource(seed + int64(w)*7919))
				n := int64(0)
				for !stop.Load() {
					o := objs[rng.Intn(len(objs))]
					o.Pos.X += rng.Float64() - 0.5
					o.Pos.Y += rng.Float64() - 0.5
					t0 := time.Now()
					if err := store.Report(o); err != nil {
						firstE.CompareAndSwap(nil, err)
						break
					}
					h.Observe(time.Since(t0))
					n++
				}
				total.Add(n)
			}(w)
		}
		time.Sleep(cellTime)
		stop.Store(true)
		wg.Wait()
		seconds := time.Since(start).Seconds()
		ing, _ := store.IngestStats()
		if cerr := store.Close(); cerr != nil && err == nil {
			err = cerr
		}
		if e, ok := firstE.Load().(error); ok {
			return ingestCell{}, e
		}
		if err != nil {
			return ingestCell{}, err
		}
		p50, p99, p999 := h.Percentiles()
		cell := ingestCell{
			Mode:       mode,
			Durable:    durable,
			Writers:    writers,
			WindowUsec: coalWindow.Microseconds(),
			Ops:        total.Load(),
			Seconds:    seconds,
			OpsPerSec:  float64(total.Load()) / seconds,
			MeanUsec:   float64(h.Mean().Nanoseconds()) / 1e3,
			P50Usec:    float64(p50.Nanoseconds()) / 1e3,
			P99Usec:    float64(p99.Nanoseconds()) / 1e3,
			P999Usec:   float64(p999.Nanoseconds()) / 1e3,
		}
		if mode == "coalesced" {
			cell.CoalescedBatches = ing.CoalescedBatches
			cell.CoalescedRecords = ing.CoalescedRecords
			if ing.CoalescedBatches > 0 {
				cell.AvgBatch = float64(ing.CoalescedRecords) / float64(ing.CoalescedBatches)
			}
		}
		return cell, nil
	}

	// medianCell picks the median repetition by throughput; the windowed cell
	// below re-sorts by p99 since its throughput is pinned by the dwell
	// cadence and the tail is what it exists to demonstrate.
	repeatCell := func(mode string, durable bool, writers int, coalWindow time.Duration) ([]ingestCell, error) {
		cells := make([]ingestCell, 0, cellReps)
		for r := 0; r < cellReps; r++ {
			cell, err := runCell(mode, durable, writers, coalWindow)
			if err != nil {
				return nil, err
			}
			cells = append(cells, cell)
		}
		return cells, nil
	}
	medianCell := func(mode string, durable bool, writers int, coalWindow time.Duration) (ingestCell, error) {
		cells, err := repeatCell(mode, durable, writers, coalWindow)
		if err != nil {
			return ingestCell{}, err
		}
		sort.Slice(cells, func(i, j int) bool { return cells[i].OpsPerSec < cells[j].OpsPerSec })
		return cells[len(cells)/2], nil
	}

	rep := ingestReport{
		Experiment:      "ingest",
		Dataset:         string(ds),
		Objects:         len(objs),
		GoMaxProcs:      procs,
		GroupWindowUsec: groupWindow.Microseconds(),
		DurableSpeedup:  map[string]float64{},
	}
	fmt.Printf("ingest: single-record Reports, %v per cell, group window %v\n\n", cellTime, groupWindow)

	tput := map[string]float64{}
	for _, durable := range []bool{false, true} {
		for _, writers := range []int{1, 4, 16, 64} {
			for _, mode := range []string{"direct", "coalesced"} {
				// All throughput cells use a zero dwell: batches form from
				// arrival concurrency alone. A dwell long enough to matter
				// collects the whole post-fsync wakeup burst into one
				// lockstep batch and serializes the pipeline — the
				// throughput win needs consecutive batches overlapping the
				// fsync and riding its commit window.
				cell, err := medianCell(mode, durable, writers, 0)
				if err != nil {
					return err
				}
				rep.Cells = append(rep.Cells, cell)
				tput[fmt.Sprintf("%s/%v/%d", mode, durable, writers)] = cell.OpsPerSec
				extra := ""
				if cell.AvgBatch > 0 {
					extra = fmt.Sprintf("  avg batch %.1f", cell.AvgBatch)
				}
				fmt.Printf("  %-9s durable=%-5v writers=%-3d %9.0f reports/s  p50 %6.0fµs p99 %6.0fµs p999 %6.0fµs%s\n",
					mode, durable, writers, cell.OpsPerSec, cell.P50Usec, cell.P99Usec, cell.P999Usec, extra)
			}
		}
	}
	for _, writers := range []int{1, 4, 16, 64} {
		d := tput[fmt.Sprintf("direct/true/%d", writers)]
		c := tput[fmt.Sprintf("coalesced/true/%d", writers)]
		if d > 0 {
			rep.DurableSpeedup[fmt.Sprintf("%d", writers)] = c / d
		}
	}
	fmt.Printf("\n  durable coalesced/direct speedup: 1w %.2fx, 4w %.2fx, 16w %.2fx, 64w %.2fx\n",
		rep.DurableSpeedup["1"], rep.DurableSpeedup["4"], rep.DurableSpeedup["16"], rep.DurableSpeedup["64"])

	// The dwell-window tail bound: with a window that dominates the store's
	// intrinsic tail jitter (which the saturated cells above put in the
	// low milliseconds), p99 must sit within ~2x of the window — one full
	// dwell for the batch you ride plus the batch's apply, never an unbounded
	// queue wait. The off-cadence arrival rate makes this the latency-SLO
	// configuration rather than the throughput one.
	const dwell = 5 * time.Millisecond
	wcells, err := repeatCell("coalesced", false, 16, dwell)
	if err != nil {
		return err
	}
	sort.Slice(wcells, func(i, j int) bool { return wcells[i].P99Usec < wcells[j].P99Usec })
	wc := wcells[len(wcells)/2]
	rep.WindowedCell = &wc
	rep.WindowedP99Ratio = wc.P99Usec / float64(dwell.Microseconds())
	fmt.Printf("  windowed cell (%v dwell, 16 writers, in-memory): p99 %.0fµs = %.2fx window, avg batch %.1f\n",
		dwell, wc.P99Usec, rep.WindowedP99Ratio, wc.AvgBatch)

	data, err := json.MarshalIndent(rep, "", "  ")
	if err != nil {
		return err
	}
	if err := os.WriteFile(outPath, append(data, '\n'), 0o644); err != nil {
		return err
	}
	fmt.Printf("\nwrote %s\n", outPath)
	return nil
}
