package main

import (
	"encoding/json"
	"fmt"
	"math/rand"
	"os"
	"runtime"
	"time"

	vpindex "repro"
	"repro/internal/bench"
	"repro/internal/workload"
)

// ckptRound is one checkpoint's measured cost: the commit-lock pause, the
// bytes serialized, and the wall time of the whole call (capture + encode +
// fsync + rename).
type ckptRound struct {
	Kind        string  `json:"kind"` // "full" or "delta"
	PauseUsec   float64 `json:"pause_usec"`
	Bytes       int64   `json:"bytes"`
	WallSeconds float64 `json:"wall_seconds"`
	HotReports  int     `json:"hot_reports"` // reports issued since the previous checkpoint
}

// ckptSearchResult is one read path's whole-store search measurement. Pool
// misses are buffer-pool misses, i.e. the slot reads that actually reached
// the page file through pread or the mapping.
type ckptSearchResult struct {
	ReadPath       string  `json:"read_path"` // "pread" or "mmap"
	MmapActive     bool    `json:"mmap_active"`
	Searches       int     `json:"searches"`
	Seconds        float64 `json:"seconds"`
	SearchesPerSec float64 `json:"searches_per_sec"`
	PoolMisses     int64   `json:"pool_misses"`
}

// ckptReport is the BENCH_checkpoint.json schema: the incremental-checkpoint
// perf datapoint. The headline numbers are the full-vs-delta pause and byte
// ratios at a large resident set with a small hot set, the recovery cost of
// the full+delta chain, the mmap-vs-pread search comparison, and the mixed
// durable throughput with and without background delta checkpoints riding it.
type ckptReport struct {
	Experiment string `json:"experiment"`
	Dataset    string `json:"dataset"`
	Objects    int    `json:"objects"`
	HotSet     int    `json:"hot_set"`
	GoMaxProcs int    `json:"gomaxprocs"`

	Rounds         []ckptRound `json:"rounds"`
	FullPauseUsec  float64     `json:"full_pause_usec"`
	DeltaPauseUsec float64     `json:"delta_pause_usec"` // mean over delta rounds
	PauseRatio     float64     `json:"pause_ratio"`      // full ÷ delta
	FullBytes      int64       `json:"full_bytes"`
	DeltaBytes     int64       `json:"delta_bytes"` // mean over delta rounds
	BytesRatio     float64     `json:"bytes_ratio"` // full ÷ delta

	DeltaChainLen    int64   `json:"delta_chain_len"`
	RecoverySeconds  float64 `json:"recovery_seconds"`
	RecoveryReplayed int64   `json:"recovery_replayed_records"`
	RecoveredObjects int     `json:"recovered_objects"`

	Search      []ckptSearchResult `json:"search"`
	MmapSpeedup float64            `json:"mmap_speedup"` // mmap searches/s ÷ pread searches/s

	ThroughputNoCkpt   float64 `json:"throughput_no_ckpt_ops_per_sec"`
	ThroughputWithCkpt float64 `json:"throughput_with_ckpt_ops_per_sec"`
	ThroughputRatio    float64 `json:"throughput_ratio"` // with ÷ without
}

// runCheckpoint measures what the incremental checkpoint machinery buys:
//
//   - Cost: a store holding ≥200k resident objects takes one full snapshot,
//     then delta checkpoints after re-reporting a ~1% hot set. The paper's
//     workloads are exactly this shape — a huge fleet, a small slice moving
//     between cuts — so the full-vs-delta pause and byte ratios are the
//     figure of merit.
//   - Recovery: the store reopens from the full snapshot plus the delta
//     chain plus the WAL tail, timed, and must recover every object.
//   - Read path: the same data directory is reopened with pread and with
//     mmap and hit with identical whole-domain searches through a small
//     buffer pool, so slot reads actually reach the page file.
//   - Throughput: concurrent batched reports run with no checkpoints and
//     with a background delta-checkpoint cadence riding the same load; the
//     ratio shows what continuous checkpointing costs the write path.
//
// Results go to stdout and to the JSON report at outPath.
func runCheckpoint(ds workload.Dataset, sc bench.Scale, seed int64, procs int, outPath string) error {
	if procs <= 0 {
		procs = runtime.GOMAXPROCS(0)
		if procs < 8 {
			procs = 8
		}
	}
	prev := runtime.GOMAXPROCS(procs)
	defer runtime.GOMAXPROCS(prev)

	// The experiment's point is a large resident set with a small hot set:
	// force at least 200k objects regardless of the global -objects scale.
	n := sc.Objects
	if n < 200_000 {
		n = 200_000
	}
	sc = bench.ScaleFor(n, sc.Queries, sc.Duration)
	hot := n / 100

	p := workload.DefaultParams(ds, n)
	p.Domain = vpindex.R(0, 0, sc.DomainSide, sc.DomainSide)
	p.Duration = sc.Duration
	p.Seed = seed
	gen, err := workload.NewGenerator(p)
	if err != nil {
		return err
	}
	objs := gen.Initial()
	sample := make([]vpindex.Vec2, len(objs))
	for i, o := range objs {
		sample[i] = o.Vel
	}

	openDir := func(dir string, extra ...vpindex.Option) (*vpindex.Store, error) {
		opts := []vpindex.Option{
			vpindex.WithKind(vpindex.Bx),
			vpindex.WithDomain(p.Domain),
			vpindex.WithShards(procs),
			vpindex.WithBufferPages(sc.Buffer),
			vpindex.WithVelocityPartitioning(2),
			vpindex.WithVelocitySample(sample),
			vpindex.WithSeed(seed),
			vpindex.WithDataDir(dir),
			vpindex.WithSyncPolicy(vpindex.SyncNone()),
		}
		return vpindex.Open(append(opts, extra...)...)
	}

	rep := ckptReport{
		Experiment: "checkpoint",
		Dataset:    string(ds),
		Objects:    n,
		HotSet:     hot,
		GoMaxProcs: procs,
	}
	fmt.Printf("checkpoint: %d resident objects, %d-object hot set (%d%%)\n\n",
		n, hot, 100*hot/n)

	dir, err := os.MkdirTemp("", "vpckpt-*")
	if err != nil {
		return err
	}
	defer os.RemoveAll(dir)
	store, err := openDir(dir)
	if err != nil {
		return err
	}
	if err := store.ReportBatch(objs); err != nil {
		store.Close()
		return err
	}

	// One full snapshot, then delta rounds over a churned hot set.
	rng := rand.New(rand.NewSource(seed + 101))
	churn := func() error {
		batch := make([]vpindex.Object, 0, 256)
		for i := 0; i < hot; i++ {
			o := objs[rng.Intn(len(objs))]
			o.Pos.X += rng.Float64() - 0.5
			o.Pos.Y += rng.Float64() - 0.5
			batch = append(batch, o)
			if len(batch) == cap(batch) {
				if err := store.ReportBatch(batch); err != nil {
					return err
				}
				batch = batch[:0]
			}
		}
		if len(batch) > 0 {
			return store.ReportBatch(batch)
		}
		return nil
	}
	const deltaRounds = 3
	var deltaPauseSum, deltaBytesSum float64
	for r := 0; r <= deltaRounds; r++ {
		kind := "delta"
		reports := hot
		if r == 0 {
			kind, reports = "full", 0
		} else if err := churn(); err != nil {
			store.Close()
			return err
		}
		start := time.Now()
		if err := store.Checkpoint(); err != nil {
			store.Close()
			return err
		}
		wall := time.Since(start).Seconds()
		st, _ := store.DurabilityStats()
		round := ckptRound{
			Kind:        kind,
			PauseUsec:   float64(st.CheckpointPauseNs) / 1e3,
			Bytes:       st.CheckpointBytes,
			WallSeconds: wall,
			HotReports:  reports,
		}
		rep.Rounds = append(rep.Rounds, round)
		if kind == "full" {
			rep.FullPauseUsec, rep.FullBytes = round.PauseUsec, round.Bytes
		} else {
			deltaPauseSum += round.PauseUsec
			deltaBytesSum += float64(round.Bytes)
		}
		fmt.Printf("  %-5s checkpoint: pause %9.0f µs, %10.2f MB, %.3fs wall\n",
			kind, round.PauseUsec, float64(round.Bytes)/1e6, wall)
	}
	rep.DeltaPauseUsec = deltaPauseSum / deltaRounds
	rep.DeltaBytes = int64(deltaBytesSum / deltaRounds)
	if rep.DeltaPauseUsec > 0 {
		rep.PauseRatio = rep.FullPauseUsec / rep.DeltaPauseUsec
	}
	if rep.DeltaBytes > 0 {
		rep.BytesRatio = float64(rep.FullBytes) / float64(rep.DeltaBytes)
	}
	st, _ := store.DurabilityStats()
	rep.DeltaChainLen = st.DeltaChainLen
	fmt.Printf("\n  full/delta ratios: pause %.1fx, bytes %.1fx (chain length %d)\n\n",
		rep.PauseRatio, rep.BytesRatio, rep.DeltaChainLen)
	if err := store.Close(); err != nil {
		return err
	}

	// Recovery from the full snapshot + delta chain + WAL tail.
	start := time.Now()
	recovered, err := openDir(dir)
	if err != nil {
		return err
	}
	rep.RecoverySeconds = time.Since(start).Seconds()
	rst, _ := recovered.DurabilityStats()
	rep.RecoveryReplayed = rst.ReplayedRecords
	rep.RecoveredObjects = recovered.Len()
	if err := recovered.Close(); err != nil {
		return err
	}
	if rep.RecoveredObjects != n {
		return fmt.Errorf("chain recovery lost objects: %d of %d", rep.RecoveredObjects, n)
	}
	fmt.Printf("  recovery from chain: %.3fs, %d WAL records replayed, all %d objects recovered\n\n",
		rep.RecoverySeconds, rep.RecoveryReplayed, rep.RecoveredObjects)

	// Read-path comparison on the identical data directory: a small buffer
	// pool forces searches through the page file, where mmap skips the
	// per-slot pread syscall.
	queries := gen.Queries(sc.Queries)
	searchPages := sc.Buffer / 16
	if searchPages < 8 {
		searchPages = 8
	}
	for _, path := range []string{"pread", "mmap"} {
		extra := []vpindex.Option{vpindex.WithBufferPages(searchPages)}
		if path == "mmap" {
			extra = append(extra, vpindex.WithMmap())
		}
		s, err := openDir(dir, extra...)
		if err != nil {
			return err
		}
		// Warm up once so both variants start from the same cache state.
		for _, q := range queries {
			if _, err := s.Search(q); err != nil {
				s.Close()
				return err
			}
		}
		readsBefore := s.IO().Reads
		searchStart := time.Now()
		searches := 0
		for round := 0; round < 3; round++ {
			for _, q := range queries {
				if _, err := s.Search(q); err != nil {
					s.Close()
					return err
				}
				searches++
			}
		}
		seconds := time.Since(searchStart).Seconds()
		sst, _ := s.DurabilityStats()
		res := ckptSearchResult{
			ReadPath:       path,
			MmapActive:     sst.MmapReads,
			Searches:       searches,
			Seconds:        seconds,
			SearchesPerSec: float64(searches) / seconds,
			PoolMisses:     s.IO().Reads - readsBefore,
		}
		rep.Search = append(rep.Search, res)
		fmt.Printf("  search via %-5s %5d searches, %7.3fs, %8.1f searches/s (%d pool misses, mmap active %v)\n",
			path, searches, seconds, res.SearchesPerSec, res.PoolMisses, res.MmapActive)
		if err := s.Close(); err != nil {
			return err
		}
	}
	if len(rep.Search) == 2 && rep.Search[0].SearchesPerSec > 0 {
		rep.MmapSpeedup = rep.Search[1].SearchesPerSec / rep.Search[0].SearchesPerSec
	}
	fmt.Printf("  mmap search speedup: %.2fx\n\n", rep.MmapSpeedup)

	// Mixed durable throughput with and without background delta
	// checkpoints: the cadence trips roughly every hot-set's worth of
	// reports, so several deltas (and possibly a compaction) land mid-run.
	const batchSize = 256
	totalOps := n
	for _, withCkpt := range []bool{false, true} {
		tdir, err := os.MkdirTemp("", "vpckpt-*")
		if err != nil {
			return err
		}
		extra := []vpindex.Option{vpindex.WithSyncPolicy(vpindex.SyncGroupCommit(500 * time.Microsecond))}
		if withCkpt {
			// The cadence counts WAL records and each batch is one record, so
			// a delta lands roughly every hot-set's worth of reports.
			extra = append(extra,
				vpindex.WithCheckpointEvery(hot/batchSize+1),
				vpindex.WithCheckpointCompaction(4, 0),
			)
		}
		s, err := openDir(tdir, extra...)
		if err != nil {
			os.RemoveAll(tdir)
			return err
		}
		if err := s.ReportBatch(objs); err != nil {
			s.Close()
			os.RemoveAll(tdir)
			return err
		}
		ran, seconds, err := hammerDurable(s, objs, procs, totalOps, batchSize, seed)
		tst, _ := s.DurabilityStats()
		cerr := s.Close()
		os.RemoveAll(tdir)
		if err != nil {
			return err
		}
		if cerr != nil {
			return cerr
		}
		ops := float64(ran) / seconds
		label := "no checkpoints"
		if withCkpt {
			label = "delta cadence"
			rep.ThroughputWithCkpt = ops
		} else {
			rep.ThroughputNoCkpt = ops
		}
		fmt.Printf("  mixed throughput, %-14s %9.0f reports/s (%d checkpoints, %d compactions)\n",
			label+":", ops, tst.Checkpoints, tst.Compactions)
	}
	if rep.ThroughputNoCkpt > 0 {
		rep.ThroughputRatio = rep.ThroughputWithCkpt / rep.ThroughputNoCkpt
	}
	fmt.Printf("  throughput with background deltas at %.0f%% of checkpoint-free\n\n", rep.ThroughputRatio*100)

	data, err := json.MarshalIndent(rep, "", "  ")
	if err != nil {
		return err
	}
	if err := os.WriteFile(outPath, append(data, '\n'), 0o644); err != nil {
		return err
	}
	fmt.Printf("wrote %s\n", outPath)
	return nil
}
