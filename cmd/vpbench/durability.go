package main

import (
	"encoding/json"
	"fmt"
	"math/rand"
	"os"
	"runtime"
	"sync"
	"time"

	vpindex "repro"
	"repro/internal/bench"
	"repro/internal/workload"
)

// durThroughputResult is one sync policy's sustained write throughput.
type durThroughputResult struct {
	Policy     string  `json:"policy"` // "none", "group_commit", "always"
	Goroutines int     `json:"goroutines"`
	BatchSize  int     `json:"batch_size"`
	Ops        int     `json:"ops"`
	Seconds    float64 `json:"seconds"`
	OpsPerSec  float64 `json:"ops_per_sec"`
	WALBytes   uint64  `json:"wal_bytes"`
	// Cost of one checkpoint taken right after the hammer run: the
	// commit-lock pause and the serialized size (the first checkpoint of a
	// fresh store is a full snapshot of the whole fleet).
	CheckpointPauseUsec float64 `json:"checkpoint_pause_usec"`
	CheckpointMB        float64 `json:"checkpoint_mb"`
}

// durRecoveryResult is one recovery-time measurement: reopen cost as a
// function of the WAL tail the checkpointless store left behind.
type durRecoveryResult struct {
	WALRecords    int     `json:"wal_records"`
	WALBytes      uint64  `json:"wal_bytes"`
	Seconds       float64 `json:"seconds"`
	RecordsPerSec float64 `json:"records_per_sec"`
	Replayed      int64   `json:"replayed_records"`
}

// durReport is the BENCH_durability.json schema: the durable write path's
// perf datapoint — group commit must keep batched report throughput close
// to the no-fsync ceiling — plus the recovery-time curve.
type durReport struct {
	Experiment      string                `json:"experiment"`
	Dataset         string                `json:"dataset"`
	Objects         int                   `json:"objects"`
	GoMaxProcs      int                   `json:"gomaxprocs"`
	Throughput      []durThroughputResult `json:"throughput"`
	GroupVsNone     float64               `json:"group_commit_vs_none"` // group-commit ops/s ÷ no-sync ops/s
	AlwaysVsNone    float64               `json:"always_vs_none"`
	Recovery        []durRecoveryResult   `json:"recovery"`
	GroupWindowUsec int64                 `json:"group_window_usec"`
}

// runDurability measures the durable subsystem end to end on real files:
//
//   - Throughput: concurrent workers drive batched location reports through
//     a FileStore-backed Store under each sync policy. SyncNone is the
//     no-fsync ceiling, SyncAlways the floor, and group commit sits between
//     them by electing one fsync leader per window that every concurrent
//     batch rides.
//   - Recovery: checkpointless stores are loaded with growing WAL tails,
//     closed, and re-opened with the clock running — replay cost scales with
//     the tail, which is exactly what checkpoints exist to bound.
//
// Results go to stdout and to the JSON report at outPath.
func runDurability(ds workload.Dataset, sc bench.Scale, seed int64, procs int, outPath string) error {
	if procs <= 0 {
		procs = runtime.GOMAXPROCS(0)
		if procs < 8 {
			procs = 8
		}
	}
	prev := runtime.GOMAXPROCS(procs)
	defer runtime.GOMAXPROCS(prev)

	p := workload.DefaultParams(ds, sc.Objects)
	p.Domain = vpindex.R(0, 0, sc.DomainSide, sc.DomainSide)
	p.Duration = sc.Duration
	p.Seed = seed
	gen, err := workload.NewGenerator(p)
	if err != nil {
		return err
	}
	objs := gen.Initial()
	sample := make([]vpindex.Vec2, len(objs))
	for i, o := range objs {
		sample[i] = o.Vel
	}

	const (
		batchSize   = 256
		groupWindow = 500 * time.Microsecond
	)
	totalOps := 4 * len(objs)

	openDurable := func(dir string, pol vpindex.SyncPolicy) (*vpindex.Store, error) {
		return vpindex.Open(
			vpindex.WithKind(vpindex.TPRStar),
			vpindex.WithDomain(p.Domain),
			vpindex.WithShards(procs),
			vpindex.WithBufferPages(sc.Buffer),
			vpindex.WithVelocityPartitioning(2),
			vpindex.WithVelocitySample(sample),
			vpindex.WithSeed(seed),
			vpindex.WithDataDir(dir),
			vpindex.WithSyncPolicy(pol),
		)
	}

	rep := durReport{
		Experiment:      "durability",
		Dataset:         string(ds),
		Objects:         len(objs),
		GoMaxProcs:      procs,
		GroupWindowUsec: groupWindow.Microseconds(),
	}
	fmt.Printf("durability: %d workers, %d batched reports (batch %d), group window %v\n\n",
		procs, totalOps, batchSize, groupWindow)

	policies := []struct {
		name string
		pol  vpindex.SyncPolicy
	}{
		{"none", vpindex.SyncNone()},
		{"group_commit", vpindex.SyncGroupCommit(groupWindow)},
		{"always", vpindex.SyncAlways()},
	}
	tput := map[string]float64{}
	for _, pc := range policies {
		dir, err := os.MkdirTemp("", "vpdur-*")
		if err != nil {
			return err
		}
		store, err := openDurable(dir, pc.pol)
		if err != nil {
			os.RemoveAll(dir)
			return err
		}
		if err := store.ReportBatch(objs); err != nil {
			store.Close()
			os.RemoveAll(dir)
			return err
		}
		ran, seconds, err := hammerDurable(store, objs, procs, totalOps, batchSize, seed)
		st, _ := store.DurabilityStats()
		if err == nil {
			// Outside the timed window: one full checkpoint of the hammered
			// store, to surface the capture pause and snapshot size.
			if cerr := store.Checkpoint(); cerr != nil {
				err = cerr
			} else {
				st, _ = store.DurabilityStats()
			}
		}
		cerr := store.Close()
		os.RemoveAll(dir)
		if err != nil {
			return err
		}
		if cerr != nil {
			return cerr
		}
		res := durThroughputResult{
			Policy:              pc.name,
			Goroutines:          procs,
			BatchSize:           batchSize,
			Ops:                 ran,
			Seconds:             seconds,
			OpsPerSec:           float64(ran) / seconds,
			WALBytes:            st.WALAppendedLSN,
			CheckpointPauseUsec: float64(st.CheckpointPauseNs) / 1e3,
			CheckpointMB:        float64(st.CheckpointBytes) / 1e6,
		}
		tput[pc.name] = res.OpsPerSec
		rep.Throughput = append(rep.Throughput, res)
		fmt.Printf("  %-13s %9.0f reports/s  (%d ops in %.2fs, WAL %.1f MB; full ckpt pause %.0f µs, %.1f MB)\n",
			pc.name, res.OpsPerSec, ran, seconds, float64(st.WALAppendedLSN)/1e6,
			res.CheckpointPauseUsec, res.CheckpointMB)
	}
	if tput["none"] > 0 {
		rep.GroupVsNone = tput["group_commit"] / tput["none"]
		rep.AlwaysVsNone = tput["always"] / tput["none"]
	}
	fmt.Printf("\n  group commit at %.0f%% of the no-fsync ceiling, always-sync at %.0f%%\n\n",
		rep.GroupVsNone*100, rep.AlwaysVsNone*100)

	// Recovery time vs WAL-tail length: no checkpoints, so reopen replays
	// the whole log through the normal write paths.
	for _, tail := range []int{2_000, 8_000, 32_000} {
		dir, err := os.MkdirTemp("", "vpdur-*")
		if err != nil {
			return err
		}
		store, err := openDurable(dir, vpindex.SyncNone())
		if err != nil {
			os.RemoveAll(dir)
			return err
		}
		rng := rand.New(rand.NewSource(seed))
		for i := 0; i < tail; i++ {
			o := objs[rng.Intn(len(objs))]
			o.Pos.X += rng.Float64() - 0.5
			if err := store.Report(o); err != nil {
				store.Close()
				os.RemoveAll(dir)
				return err
			}
		}
		st, _ := store.DurabilityStats()
		if err := store.Close(); err != nil {
			os.RemoveAll(dir)
			return err
		}
		start := time.Now()
		recovered, err := openDurable(dir, vpindex.SyncNone())
		seconds := time.Since(start).Seconds()
		if err != nil {
			os.RemoveAll(dir)
			return err
		}
		rst, _ := recovered.DurabilityStats()
		recovered.Close()
		os.RemoveAll(dir)
		res := durRecoveryResult{
			WALRecords:    tail,
			WALBytes:      st.WALAppendedLSN,
			Seconds:       seconds,
			RecordsPerSec: float64(tail) / seconds,
			Replayed:      rst.ReplayedRecords,
		}
		rep.Recovery = append(rep.Recovery, res)
		fmt.Printf("  recover %6d-record tail (%.1f MB): %.3fs  (%.0f records/s)\n",
			tail, float64(st.WALAppendedLSN)/1e6, seconds, res.RecordsPerSec)
	}

	data, err := json.MarshalIndent(rep, "", "  ")
	if err != nil {
		return err
	}
	if err := os.WriteFile(outPath, append(data, '\n'), 0o644); err != nil {
		return err
	}
	fmt.Printf("\nwrote %s\n", outPath)
	return nil
}

// hammerDurable drives g workers, each re-reporting shuffled slices of the
// fleet in fixed-size batches (one WAL record and one group-commit wait per
// batch), until ops total reports have been issued.
func hammerDurable(store *vpindex.Store, objs []vpindex.Object, g, ops, batchSize int, seed int64) (int, float64, error) {
	var (
		wg     sync.WaitGroup
		mu     sync.Mutex
		firstE error
		ran    int
	)
	per := ops / g
	if per < batchSize {
		per = batchSize
	}
	start := time.Now()
	wg.Add(g)
	for w := 0; w < g; w++ {
		go func(w int) {
			defer wg.Done()
			rng := rand.New(rand.NewSource(seed + int64(w)*7919))
			batch := make([]vpindex.Object, batchSize)
			n := 0
			for n < per {
				for i := range batch {
					o := objs[rng.Intn(len(objs))]
					o.Pos.X += rng.Float64() - 0.5
					o.Pos.Y += rng.Float64() - 0.5
					batch[i] = o
				}
				if err := store.ReportBatch(batch); err != nil {
					mu.Lock()
					if firstE == nil {
						firstE = err
					}
					mu.Unlock()
					return
				}
				n += batchSize
			}
			mu.Lock()
			ran += n
			mu.Unlock()
		}(w)
	}
	wg.Wait()
	return ran, time.Since(start).Seconds(), firstE
}
