package main

import (
	"encoding/json"
	"fmt"
	"math"
	"os"
	"time"

	vpindex "repro"
	"repro/internal/bench"
	"repro/internal/workload"
)

// partitionResult is one (workload, objective) measurement of the
// partitioning-objective experiment.
type partitionResult struct {
	Workload     string  `json:"workload"`  // "road-grid", "drift", "speed-mixture"
	Objective    string  `json:"objective"` // "dva", "speed", "none", "auto"
	FinalKind    string  `json:"final_kind"`
	Repartitions int64   `json:"repartitions"`
	Queries      int     `json:"queries"`
	IOPerSearch  float64 `json:"io_per_search"`
}

// partitionReport is the BENCH_partition.json schema: the cost-driven
// objective chooser's datapoint in the repo's perf trajectory.
type partitionReport struct {
	Experiment string            `json:"experiment"`
	Objects    int               `json:"objects"`
	Duration   float64           `json:"duration_ts"`
	Results    []partitionResult `json:"results"`
	// AutoVsBestFixed maps each workload to auto's I/O divided by the best
	// fixed objective's — the chooser's headline: <= 1.1 everywhere means
	// auto is never more than 10% off the per-workload optimum no one
	// objective achieves across all three workloads.
	AutoVsBestFixed map[string]float64 `json:"auto_vs_best_fixed"`
	// SpeedVsDVAOnMixture is speed-band I/O over DVA I/O on the isotropic
	// speed mixture (< 1 means speed bands beat the paper's objective where
	// no dominant axis exists).
	SpeedVsDVAOnMixture float64 `json:"speed_vs_dva_on_mixture"`
}

// partitionWorkload is one pre-materialized workload: the initial
// population, the analysis sample, the report stream, the in-stream query
// stream (unmeasured; it feeds the auto chooser's query-shape log), and the
// measured tail queries.
type partitionWorkload struct {
	name    string
	sample  []vpindex.Vec2
	initial []vpindex.Object
	stream  []vpindex.Object
	inQ     []vpindex.RangeQuery
	tailQ   []vpindex.RangeQuery
}

// runPartition compares the partitioning objectives — fixed DVA, fixed
// speed bands, unpartitioned, and the cost-driven auto chooser — on three
// workloads: a stable two-axis road grid (DVA's home turf), the 45°
// direction drift of -exp drift, and an isotropic speed mixture with no
// dominant axis (speed partitioning's home turf). Every store gets the same
// adaptive repartition policy, the same phase-0 sample, and the same report
// and query streams; query I/O per search is measured over a tail window at
// stream end with a warm-up discard, clean-sample guarded exactly like -exp
// drift. Results go to stdout and the JSON report at outPath.
func runPartition(sc bench.Scale, seed int64, outPath string) error {
	speed := sc.DomainSide * 0.003
	domain := vpindex.R(0, 0, sc.DomainSide, sc.DomainSide)
	radius := sc.DomainSide / 40
	interval := sc.Duration / 8
	predictive := interval * 4

	grid := func(name string, angle1 float64) (*partitionWorkload, error) {
		gen, err := workload.NewDriftGenerator(workload.DriftParams{
			NumObjects:     sc.Objects,
			Domain:         domain,
			MeanSpeed:      speed,
			SpeedJitter:    speed * 2 / 3,
			PerpJitter:     speed / 20,
			Axes:           2,
			Angle0:         0,
			Angle1:         angle1,
			SwitchT:        sc.Duration / 2,
			Duration:       sc.Duration,
			UpdateInterval: interval,
			Seed:           seed,
		})
		if err != nil {
			return nil, err
		}
		wl := &partitionWorkload{
			name:    name,
			sample:  gen.VelocitySample(min(sc.Objects, 10_000)),
			initial: gen.Initial(),
			inQ:     gen.DriftQueries(sc.Queries, 0, sc.Duration, radius, predictive, seed+13),
			tailQ:   gen.DriftQueries(2*sc.Queries, sc.Duration, sc.Duration, radius, predictive, seed+17),
		}
		for {
			o, ok := gen.Next()
			if !ok {
				return wl, nil
			}
			wl.stream = append(wl.stream, o)
		}
	}
	mix := func() (*partitionWorkload, error) {
		gen, err := workload.NewSpeedMixGenerator(workload.SpeedMixParams{
			NumObjects:     sc.Objects,
			Domain:         domain,
			SlowFraction:   0.6,
			SlowSpeed:      speed / 25,
			FastSpeed:      speed,
			Duration:       sc.Duration,
			UpdateInterval: interval,
			Seed:           seed,
		})
		if err != nil {
			return nil, err
		}
		wl := &partitionWorkload{
			name:    "speed-mixture",
			sample:  gen.VelocitySample(min(sc.Objects, 10_000)),
			initial: gen.Initial(),
			inQ:     gen.Queries(sc.Queries, 0, sc.Duration, radius, predictive, seed+13),
			tailQ:   gen.Queries(2*sc.Queries, sc.Duration, sc.Duration, radius, predictive, seed+17),
		}
		for {
			o, ok := gen.Next()
			if !ok {
				return wl, nil
			}
			wl.stream = append(wl.stream, o)
		}
	}

	var workloads []*partitionWorkload
	stable, err := grid("road-grid", 0)
	if err != nil {
		return err
	}
	drifting, err := grid("drift", math.Pi/4)
	if err != nil {
		return err
	}
	mixture, err := mix()
	if err != nil {
		return err
	}
	workloads = append(workloads, stable, drifting, mixture)

	objectives := []struct {
		name string
		opt  vpindex.Option
	}{
		{"dva", vpindex.WithPartitioner(vpindex.ObjectiveDVA)},
		{"speed", vpindex.WithPartitioner(vpindex.ObjectiveSpeed)},
		{"none", vpindex.WithPartitioner(vpindex.ObjectiveNone)},
		{"auto", vpindex.WithPartitionerAuto()},
	}

	rep := partitionReport{
		Experiment:      "partition",
		Objects:         sc.Objects,
		Duration:        sc.Duration,
		AutoVsBestFixed: map[string]float64{},
	}
	io := map[string]map[string]float64{} // workload -> objective -> I/O per search
	for _, wl := range workloads {
		io[wl.name] = map[string]float64{}
		for _, obj := range objectives {
			store, err := vpindex.Open(
				vpindex.WithKind(vpindex.Bx),
				vpindex.WithDomain(domain),
				vpindex.WithBufferPages(sc.Buffer),
				vpindex.WithMaxUpdateInterval(interval),
				obj.opt,
				vpindex.WithVelocityPartitioning(2),
				vpindex.WithVelocitySample(wl.sample),
				vpindex.WithRepartitionPolicy(vpindex.RepartitionPolicy{
					Every:          sc.Objects,
					DriftThreshold: 0.3,
					ReservoirSize:  sc.Objects,
				}),
				vpindex.WithSeed(seed),
			)
			if err != nil {
				return err
			}
			if err := store.ReportBatch(wl.initial); err != nil {
				return err
			}
			// Replay the stream; in-stream queries run unmeasured — their
			// job is realism and feeding the chooser's query-shape log.
			qi := 0
			for _, o := range wl.stream {
				if err := store.Report(o); err != nil {
					return err
				}
				for qi < len(wl.inQ) && wl.inQ[qi].Now <= o.T {
					if _, err := store.Search(wl.inQ[qi]); err != nil {
						return err
					}
					qi++
				}
			}
			// Let an in-flight background swap land before the tail window.
			for w := 0; w < 200 && store.Stats().SwapInFlight; w++ {
				time.Sleep(10 * time.Millisecond)
			}
			// Tail measurement: first half warms the page cache, the second
			// half is counted — dropping any sample a background swap dirtied
			// (same clean-sample guard as -exp drift).
			var tio, tn int64
			for i, q := range wl.tailQ {
				before := store.Stats()
				if _, err := store.Search(q); err != nil {
					return err
				}
				if i < len(wl.tailQ)/2 {
					continue
				}
				after := store.Stats()
				if before.SwapInFlight || after.SwapInFlight ||
					after.PartitionEpoch != before.PartitionEpoch ||
					after.Repartitions != before.Repartitions {
					continue
				}
				tio += after.Reads - before.Reads
				tn++
			}
			perSearch := 0.0
			if tn > 0 {
				perSearch = float64(tio) / float64(tn)
			}
			an, _ := store.Analysis()
			r := partitionResult{
				Workload:     wl.name,
				Objective:    obj.name,
				FinalKind:    an.Kind.String(),
				Repartitions: store.Stats().Repartitions,
				Queries:      int(tn),
				IOPerSearch:  perSearch,
			}
			io[wl.name][obj.name] = perSearch
			rep.Results = append(rep.Results, r)
			fmt.Printf("partition: %-13s %-5s  final=%-5s swaps=%d  %4d queries, avg I/O %7.1f\n",
				wl.name, obj.name, r.FinalKind, r.Repartitions, tn, perSearch)
		}
	}

	for _, wl := range workloads {
		best := math.Inf(1)
		for _, fixed := range []string{"dva", "speed", "none"} {
			if v := io[wl.name][fixed]; v > 0 && v < best {
				best = v
			}
		}
		if best > 0 && !math.IsInf(best, 1) {
			rep.AutoVsBestFixed[wl.name] = io[wl.name]["auto"] / best
		}
	}
	if dva := io["speed-mixture"]["dva"]; dva > 0 {
		rep.SpeedVsDVAOnMixture = io["speed-mixture"]["speed"] / dva
	}
	for _, wl := range workloads {
		fmt.Printf("partition: %-13s auto at %.2fx of the best fixed objective\n",
			wl.name, rep.AutoVsBestFixed[wl.name])
	}
	fmt.Printf("partition: speed bands at %.2fx of DVA I/O on the speed mixture\n\n",
		rep.SpeedVsDVAOnMixture)

	data, err := json.MarshalIndent(rep, "", "  ")
	if err != nil {
		return err
	}
	if err := os.WriteFile(outPath, append(data, '\n'), 0o644); err != nil {
		return err
	}
	fmt.Printf("partition: wrote %s\n\n", outPath)
	return nil
}
