package main

import (
	"encoding/json"
	"errors"
	"fmt"
	"os"
	"runtime"
	"time"

	vpindex "repro"
	"repro/internal/bench"
	"repro/internal/workload"
)

// faultThroughputResult is one datapoint of the fault-rate sweep: sustained
// batched-report throughput with every acknowledged batch fsynced
// (SyncAlways) while the injector fails the given fraction of physical I/O
// attempts transiently. ClientErrors must stay zero — the retry policy has
// to absorb every injected fault invisibly.
type faultThroughputResult struct {
	TransientRate  float64 `json:"transient_rate"` // per-attempt probability of EIO and of fsync failure
	Goroutines     int     `json:"goroutines"`
	Ops            int     `json:"ops"`
	Seconds        float64 `json:"seconds"`
	OpsPerSec      float64 `json:"ops_per_sec"`
	VsClean        float64 `json:"vs_clean"` // ops/s ÷ zero-fault ops/s
	InjectedFaults int64   `json:"injected_faults"`
	IORetries      int64   `json:"io_retries"`
	ClientErrors   int     `json:"client_errors"`
}

// faultDegradeResult measures graceful degradation end to end: a scripted
// permanent WAL fault fires mid-stream, and a concurrent observer clocks how
// long until Health() reads Degraded. After the transition every write must
// be refused with ErrDegraded while reads keep serving from memory.
type faultDegradeResult struct {
	FaultAtAppend     int     `json:"fault_at_wal_append"` // 1-based WAL append sequence that dies
	AckedBefore       int     `json:"acked_writes_before_fault"`
	SecondsToDegraded float64 `json:"seconds_to_degraded"` // hammer start → observer sees Degraded
	WritesRefused     int     `json:"writes_refused_after_degrade"`
	WritesAttempted   int     `json:"writes_attempted_after_degrade"`
	ReadsServed       int     `json:"reads_served_while_degraded"`
	Health            string  `json:"health"`
	HealthReason      string  `json:"health_reason"`
}

// faultsReport is the BENCH_faults.json schema: the fault-tolerance
// datapoint — throughput under transient fault rates (retry cost) and the
// latency of the Healthy → Degraded transition on a permanent fault.
type faultsReport struct {
	Experiment    string                  `json:"experiment"`
	Dataset       string                  `json:"dataset"`
	Objects       int                     `json:"objects"`
	GoMaxProcs    int                     `json:"gomaxprocs"`
	RetryAttempts int                     `json:"retry_max_attempts"`
	RetryBaseUsec int64                   `json:"retry_base_usec"`
	Throughput    []faultThroughputResult `json:"throughput"`
	Degradation   faultDegradeResult      `json:"degradation"`
}

// runFaults measures the storage fault-tolerance machinery on real files:
//
//   - Throughput vs transient fault rate: concurrent workers drive batched
//     reports through a FileStore-backed Store under SyncAlways while a
//     seeded injector fails 0%, 0.1%, and 1% of physical page/WAL/fsync
//     attempts with transient EIO. The bounded-backoff retry loop must
//     absorb every fault with zero client-visible errors; the throughput
//     ratio against the clean run is the price of that absorption.
//   - Degradation latency: a scripted permanent WAL fault kills a chosen
//     append mid-stream. A concurrent poller clocks the wall time until
//     Health() reads Degraded, then the run verifies the contract: writes
//     refused with ErrDegraded, reads still served.
//
// Results go to stdout and to the JSON report at outPath.
func runFaults(ds workload.Dataset, sc bench.Scale, seed int64, procs int, outPath string) error {
	if procs <= 0 {
		procs = runtime.GOMAXPROCS(0)
		if procs < 8 {
			procs = 8
		}
	}
	prev := runtime.GOMAXPROCS(procs)
	defer runtime.GOMAXPROCS(prev)

	p := workload.DefaultParams(ds, sc.Objects)
	p.Domain = vpindex.R(0, 0, sc.DomainSide, sc.DomainSide)
	p.Duration = sc.Duration
	p.Seed = seed
	gen, err := workload.NewGenerator(p)
	if err != nil {
		return err
	}
	objs := gen.Initial()
	sample := make([]vpindex.Vec2, len(objs))
	for i, o := range objs {
		sample[i] = o.Vel
	}

	retry := vpindex.RetryPolicy{
		MaxAttempts: 6,
		BaseDelay:   50 * time.Microsecond,
		MaxDelay:    time.Millisecond,
	}
	openFaulty := func(dir string, fi *vpindex.FaultInjector) (*vpindex.Store, error) {
		opts := []vpindex.Option{
			vpindex.WithKind(vpindex.TPRStar),
			vpindex.WithDomain(p.Domain),
			vpindex.WithShards(procs),
			vpindex.WithBufferPages(sc.Buffer),
			vpindex.WithVelocityPartitioning(2),
			vpindex.WithVelocitySample(sample),
			vpindex.WithSeed(seed),
			vpindex.WithDataDir(dir),
			vpindex.WithSyncPolicy(vpindex.SyncAlways()),
			vpindex.WithRetryPolicy(retry),
		}
		if fi != nil {
			opts = append(opts, vpindex.WithFaultInjector(fi))
		}
		return vpindex.Open(opts...)
	}

	rep := faultsReport{
		Experiment:    "faults",
		Dataset:       string(ds),
		Objects:       len(objs),
		GoMaxProcs:    procs,
		RetryAttempts: retry.MaxAttempts,
		RetryBaseUsec: retry.BaseDelay.Microseconds(),
	}

	const batchSize = 256
	totalOps := 2 * len(objs)
	fmt.Printf("faults: %d workers, %d batched reports (batch %d), sync always, retry %d×%v\n\n",
		procs, totalOps, batchSize, retry.MaxAttempts, retry.BaseDelay)

	clean := 0.0
	for _, rate := range []float64{0, 0.001, 0.01} {
		dir, err := os.MkdirTemp("", "vpfault-*")
		if err != nil {
			return err
		}
		var fi *vpindex.FaultInjector
		if rate > 0 {
			fi = vpindex.NewSeededInjector(seed, vpindex.FaultRates{
				TransientEIO: rate,
				SyncFail:     rate,
			})
		}
		store, err := openFaulty(dir, fi)
		if err != nil {
			os.RemoveAll(dir)
			return err
		}
		if err := store.ReportBatch(objs); err != nil {
			store.Close()
			os.RemoveAll(dir)
			return err
		}
		ran, seconds, herr := hammerDurable(store, objs, procs, totalOps, batchSize, seed)
		st, _ := store.DurabilityStats()
		health := store.Health()
		var injected int64
		if fi != nil {
			injected = fi.InjectedFaults()
		}
		cerr := store.Close()
		os.RemoveAll(dir)
		if herr != nil {
			return fmt.Errorf("rate %g: client-visible error under a transient-only schedule: %w", rate, herr)
		}
		if cerr != nil {
			return cerr
		}
		if health != vpindex.HealthHealthy {
			return fmt.Errorf("rate %g: store ended %v, want healthy", rate, health)
		}
		res := faultThroughputResult{
			TransientRate:  rate,
			Goroutines:     procs,
			Ops:            ran,
			Seconds:        seconds,
			OpsPerSec:      float64(ran) / seconds,
			InjectedFaults: injected,
			IORetries:      st.IORetries,
		}
		if rate == 0 {
			clean = res.OpsPerSec
		}
		if clean > 0 {
			res.VsClean = res.OpsPerSec / clean
		}
		rep.Throughput = append(rep.Throughput, res)
		fmt.Printf("  rate %-6g %9.0f reports/s  (%.0f%% of clean, %d faults injected, %d retries, 0 client errors)\n",
			rate, res.OpsPerSec, res.VsClean*100, injected, res.IORetries)
	}

	// Degradation latency: every location report is one WAL append, so the
	// scripted rule kills a known op mid-stream with a permanent EIO.
	const faultAt = 100
	dir, err := os.MkdirTemp("", "vpfault-*")
	if err != nil {
		return err
	}
	defer os.RemoveAll(dir)
	fi := vpindex.NewScriptedInjector(vpindex.FaultRule{
		Op:   vpindex.OpWALAppend,
		Seq:  faultAt,
		Kind: vpindex.FaultPermanentEIO,
	})
	store, err := openFaulty(dir, fi)
	if err != nil {
		return err
	}
	defer store.Close()

	degraded := make(chan time.Duration, 1)
	start := time.Now()
	go func() {
		for store.Health() == vpindex.HealthHealthy {
			time.Sleep(10 * time.Microsecond)
		}
		degraded <- time.Since(start)
	}()

	acked := 0
	var faultErr error
	for i := 0; faultErr == nil && i < 10*faultAt; i++ {
		o := objs[i%len(objs)]
		o.Pos.X += float64(i) * 0.01
		if err := store.Report(o); err != nil {
			faultErr = err
		} else {
			acked++
		}
	}
	if faultErr == nil {
		return fmt.Errorf("scripted permanent WAL fault never fired")
	}
	detect := <-degraded

	deg := faultDegradeResult{
		FaultAtAppend:     faultAt,
		AckedBefore:       acked,
		SecondsToDegraded: detect.Seconds(),
	}
	for i := 0; i < 200; i++ {
		o := objs[i%len(objs)]
		deg.WritesAttempted++
		if err := store.Report(o); errors.Is(err, vpindex.ErrDegraded) {
			deg.WritesRefused++
		}
		if _, ok := store.Get(o.ID); ok {
			deg.ReadsServed++
		}
	}
	st, _ := store.DurabilityStats()
	deg.Health = st.Health.String()
	deg.HealthReason = st.HealthReason
	rep.Degradation = deg
	fmt.Printf("\n  permanent WAL fault at append %d: %d acked writes, degraded in %v\n",
		faultAt, acked, detect.Round(time.Microsecond))
	fmt.Printf("  after degrade: %d/%d writes refused (ErrDegraded), %d/200 reads served (reason: %q)\n\n",
		deg.WritesRefused, deg.WritesAttempted, deg.ReadsServed, deg.HealthReason)

	data, err := json.MarshalIndent(rep, "", "  ")
	if err != nil {
		return err
	}
	if err := os.WriteFile(outPath, append(data, '\n'), 0o644); err != nil {
		return err
	}
	fmt.Printf("wrote %s\n", outPath)
	return nil
}
