package vpindex_test

import (
	"math"
	"math/rand"
	"testing"

	vpindex "repro"
	"repro/internal/model"
)

// knnOracleCheck verifies an index's kNN results against the brute-force
// oracle. Distances must agree exactly in order; ids may differ only
// within exact-tie groups.
func knnOracleCheck(t *testing.T, idx interface {
	SearchKNN(vpindex.KNNQuery) ([]vpindex.Neighbor, error)
}, oracle *model.BruteForce, q vpindex.KNNQuery) {
	t.Helper()
	got, err := idx.SearchKNN(q)
	if err != nil {
		t.Fatal(err)
	}
	want, err := oracle.SearchKNN(q)
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != len(want) {
		t.Fatalf("kNN returned %d results, want %d", len(got), len(want))
	}
	for i := range got {
		if math.Abs(got[i].Dist-want[i].Dist) > 1e-6*(1+want[i].Dist) {
			t.Fatalf("neighbor %d: dist %g vs oracle %g", i, got[i].Dist, want[i].Dist)
		}
	}
	// Non-tied prefixes must agree on ids too.
	for i := range got {
		if got[i].ID != want[i].ID {
			// Permitted only when distances tie exactly.
			if math.Abs(got[i].Dist-want[i].Dist) > 1e-9*(1+want[i].Dist) {
				t.Fatalf("neighbor %d: id %d vs %d at non-tied distance", i, got[i].ID, want[i].ID)
			}
		}
	}
}

func knnFleet(n int, seed int64) []vpindex.Object {
	rng := rand.New(rand.NewSource(seed))
	objs := make([]vpindex.Object, n)
	for i := range objs {
		speed := 20 + rng.Float64()*80
		if rng.Intn(2) == 0 {
			speed = -speed
		}
		vel := vpindex.V(speed, rng.NormFloat64()*2)
		if i%2 == 0 {
			vel = vpindex.V(rng.NormFloat64()*2, speed)
		}
		if i%17 == 0 {
			vel = vpindex.V(rng.Float64()*160-80, rng.Float64()*160-80)
		}
		objs[i] = vpindex.Object{
			ID:  vpindex.ObjectID(i + 1),
			Pos: vpindex.V(rng.Float64()*100000, rng.Float64()*100000),
			Vel: vel,
			T:   0,
		}
	}
	return objs
}

func TestKNNAgainstOracleAllIndexes(t *testing.T) {
	objs := knnFleet(3000, 5)
	sample := make([]vpindex.Vec2, len(objs))
	for i, o := range objs {
		sample[i] = o.Vel
	}
	oracle := model.NewBruteForce()
	for _, o := range objs {
		_ = oracle.Insert(o)
	}

	type knnIndex interface {
		SearchKNN(vpindex.KNNQuery) ([]vpindex.Neighbor, error)
		Insert(vpindex.Object) error
	}
	builds := map[string]func() (knnIndex, error){
		"tpr": func() (knnIndex, error) {
			return vpindex.New(vpindex.Options{Kind: vpindex.TPRStar, BufferPages: 200})
		},
		"bx": func() (knnIndex, error) {
			return vpindex.New(vpindex.Options{Kind: vpindex.Bx, BufferPages: 200})
		},
		"tpr-vp": func() (knnIndex, error) {
			return vpindex.NewVP(sample, vpindex.VPOptions{
				Options: vpindex.Options{Kind: vpindex.TPRStar, BufferPages: 200}, K: 2, Seed: 1,
			})
		},
		"bx-vp": func() (knnIndex, error) {
			return vpindex.NewVP(sample, vpindex.VPOptions{
				Options: vpindex.Options{Kind: vpindex.Bx, BufferPages: 200}, K: 2, Seed: 1,
			})
		},
	}
	for name, build := range builds {
		t.Run(name, func(t *testing.T) {
			idx, err := build()
			if err != nil {
				t.Fatal(err)
			}
			for _, o := range objs {
				if err := idx.Insert(o); err != nil {
					t.Fatal(err)
				}
			}
			rng := rand.New(rand.NewSource(9))
			for trial := 0; trial < 25; trial++ {
				q := vpindex.KNNQuery{
					Center: vpindex.V(rng.Float64()*100000, rng.Float64()*100000),
					K:      1 + rng.Intn(20),
					Now:    0,
					T:      rng.Float64() * 120,
				}
				knnOracleCheck(t, idx, oracle, q)
			}
		})
	}
}

func TestKNNEdgeCases(t *testing.T) {
	idx, err := vpindex.New(vpindex.Options{Kind: vpindex.TPRStar})
	if err != nil {
		t.Fatal(err)
	}
	// Empty index.
	ns, err := idx.SearchKNN(vpindex.KNNQuery{Center: vpindex.V(0, 0), K: 3, Now: 0, T: 10})
	if err != nil || len(ns) != 0 {
		t.Fatalf("empty kNN: %v %v", ns, err)
	}
	// Invalid queries.
	if _, err := idx.SearchKNN(vpindex.KNNQuery{K: 0, T: 1}); err == nil {
		t.Fatal("k=0 accepted")
	}
	if _, err := idx.SearchKNN(vpindex.KNNQuery{K: 1, Now: 5, T: 1}); err == nil {
		t.Fatal("past kNN accepted")
	}
	// k exceeding population returns everything.
	for i := 0; i < 5; i++ {
		_ = idx.Insert(vpindex.Object{ID: vpindex.ObjectID(i + 1),
			Pos: vpindex.V(float64(i)*100, 0), Vel: vpindex.V(1, 0), T: 0})
	}
	ns, err = idx.SearchKNN(vpindex.KNNQuery{Center: vpindex.V(0, 0), K: 50, Now: 0, T: 0})
	if err != nil {
		t.Fatal(err)
	}
	if len(ns) != 5 {
		t.Fatalf("k>n returned %d", len(ns))
	}
	// Results in ascending distance order.
	for i := 1; i < len(ns); i++ {
		if ns[i].Dist < ns[i-1].Dist {
			t.Fatal("neighbors out of order")
		}
	}
}

func TestKNNBxSparseFallback(t *testing.T) {
	// A Bx kNN where almost everything is far away forces radius doubling
	// (and possibly the full-scan fallback).
	idx, err := vpindex.New(vpindex.Options{Kind: vpindex.Bx})
	if err != nil {
		t.Fatal(err)
	}
	oracle := model.NewBruteForce()
	// 10 objects clustered in the far corner.
	for i := 0; i < 10; i++ {
		o := vpindex.Object{
			ID:  vpindex.ObjectID(i + 1),
			Pos: vpindex.V(99000+float64(i)*10, 99000),
			Vel: vpindex.V(1, 0),
			T:   0,
		}
		_ = idx.Insert(o)
		_ = oracle.Insert(o)
	}
	q := vpindex.KNNQuery{Center: vpindex.V(0, 0), K: 3, Now: 0, T: 60}
	knnOracleCheck(t, idx, oracle, q)
}
