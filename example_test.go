package vpindex_test

import (
	"fmt"
	"math/rand"

	vpindex "repro"
)

// Example demonstrates the core VP workflow: analyze a velocity sample,
// build the partitioned index, insert linear movers, and ask a predictive
// range query.
func Example() {
	// Velocities concentrated on two perpendicular road directions.
	rng := rand.New(rand.NewSource(1))
	sample := make([]vpindex.Vec2, 1000)
	for i := range sample {
		speed := 30 + rng.Float64()*50
		if i%2 == 0 {
			sample[i] = vpindex.V(speed, rng.NormFloat64())
		} else {
			sample[i] = vpindex.V(rng.NormFloat64(), -speed)
		}
	}

	idx, err := vpindex.NewVP(sample, vpindex.VPOptions{
		Options: vpindex.Options{Kind: vpindex.TPRStar},
		K:       2,
		Seed:    42,
	})
	if err != nil {
		panic(err)
	}
	fmt.Println("partitions:", idx.NumPartitions()) // 2 DVAs + outlier

	// An eastbound car reported at t=0.
	_ = idx.Insert(vpindex.Object{ID: 7, Pos: vpindex.V(1000, 500), Vel: vpindex.V(50, 0), T: 0})

	// Who is within 100 m of (3500, 500) at time 50? (The car will be at
	// x = 1000 + 50*50 = 3500.)
	ids, _ := idx.Search(vpindex.SliceQuery(vpindex.Circle{C: vpindex.V(3500, 500), R: 100}, 0, 50))
	fmt.Println("hits:", ids)

	// Its single nearest neighbor at that time is itself.
	ns, _ := idx.SearchKNN(vpindex.KNNQuery{Center: vpindex.V(3500, 500), K: 1, Now: 0, T: 50})
	fmt.Println("nearest:", ns[0].ID)

	// Output:
	// partitions: 3
	// hits: [7]
	// nearest: 7
}

// ExampleNew shows the unpartitioned baselines.
func ExampleNew() {
	idx, err := vpindex.New(vpindex.Options{Kind: vpindex.Bx})
	if err != nil {
		panic(err)
	}
	_ = idx.Insert(vpindex.Object{ID: 1, Pos: vpindex.V(100, 100), Vel: vpindex.V(0, 10), T: 0})
	ids, _ := idx.Search(vpindex.RectSliceQuery(vpindex.R(50, 1000, 150, 1200), 0, 100))
	fmt.Println(ids)
	// Output: [1]
}
