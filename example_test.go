package vpindex_test

import (
	"fmt"
	"math/rand"

	vpindex "repro"
)

// ExampleOpen demonstrates the production Store API: open with online
// auto-partitioning, stream ID-keyed location reports (the bootstrap fires
// mid-stream and migrates the live population), and ask predictive queries.
func ExampleOpen() {
	store, err := vpindex.Open(
		vpindex.WithKind(vpindex.TPRStar),
		vpindex.WithVelocityPartitioning(2),
		vpindex.WithAutoPartition(1000),
		vpindex.WithSeed(42),
	)
	if err != nil {
		panic(err)
	}

	// Devices report bare position/velocity records; Report upserts by ID.
	rng := rand.New(rand.NewSource(1))
	for i := 1; i <= 1200; i++ {
		speed := 30 + rng.Float64()*50
		vel := vpindex.V(speed, rng.NormFloat64())
		if i%2 == 0 {
			vel = vpindex.V(rng.NormFloat64(), -speed)
		}
		o := vpindex.Object{
			ID:  vpindex.ObjectID(i),
			Pos: vpindex.V(rng.Float64()*100000, rng.Float64()*100000),
			Vel: vel,
			T:   0,
		}
		if err := store.Report(o); err != nil {
			panic(err)
		}
	}
	// The 1000th report triggered the DVA analysis and live migration.
	fmt.Println("partitioned:", store.Partitioned())
	fmt.Println("partitions:", len(store.Partitions())) // 2 DVAs + outlier

	// An eastbound car updates its location — same verb, no old record.
	_ = store.Report(vpindex.Object{ID: 7, Pos: vpindex.V(1000, 500), Vel: vpindex.V(50, 0), T: 0})

	// Who is within 100 m of (3500, 500) at time 50? (Car 7 will be at
	// x = 1000 + 50*50 = 3500.)
	ids, _ := store.Search(vpindex.SliceQuery(vpindex.Circle{C: vpindex.V(3500, 500), R: 100}, 0, 50))
	fmt.Println("hits:", ids)

	// Output:
	// partitioned: true
	// partitions: 3
	// hits: [7]
}

// Example demonstrates the deprecated constructor workflow: analyze a
// velocity sample, build the partitioned index, insert linear movers, and
// ask a predictive range query. New code should use Open (see ExampleOpen).
func Example() {
	// Velocities concentrated on two perpendicular road directions.
	rng := rand.New(rand.NewSource(1))
	sample := make([]vpindex.Vec2, 1000)
	for i := range sample {
		speed := 30 + rng.Float64()*50
		if i%2 == 0 {
			sample[i] = vpindex.V(speed, rng.NormFloat64())
		} else {
			sample[i] = vpindex.V(rng.NormFloat64(), -speed)
		}
	}

	idx, err := vpindex.NewVP(sample, vpindex.VPOptions{
		Options: vpindex.Options{Kind: vpindex.TPRStar},
		K:       2,
		Seed:    42,
	})
	if err != nil {
		panic(err)
	}
	fmt.Println("partitions:", idx.NumPartitions()) // 2 DVAs + outlier

	// An eastbound car reported at t=0.
	_ = idx.Insert(vpindex.Object{ID: 7, Pos: vpindex.V(1000, 500), Vel: vpindex.V(50, 0), T: 0})

	// Who is within 100 m of (3500, 500) at time 50? (The car will be at
	// x = 1000 + 50*50 = 3500.)
	ids, _ := idx.Search(vpindex.SliceQuery(vpindex.Circle{C: vpindex.V(3500, 500), R: 100}, 0, 50))
	fmt.Println("hits:", ids)

	// Its single nearest neighbor at that time is itself.
	ns, _ := idx.SearchKNN(vpindex.KNNQuery{Center: vpindex.V(3500, 500), K: 1, Now: 0, T: 50})
	fmt.Println("nearest:", ns[0].ID)

	// Output:
	// partitions: 3
	// hits: [7]
	// nearest: 7
}

// ExampleNew shows the unpartitioned baselines.
func ExampleNew() {
	idx, err := vpindex.New(vpindex.Options{Kind: vpindex.Bx})
	if err != nil {
		panic(err)
	}
	_ = idx.Insert(vpindex.Object{ID: 1, Pos: vpindex.V(100, 100), Vel: vpindex.V(0, 10), T: 0})
	ids, _ := idx.Search(vpindex.RectSliceQuery(vpindex.R(50, 1000, 150, 1200), 0, 100))
	fmt.Println(ids)
	// Output: [1]
}
