// Benchmarks regenerating every figure of the VP paper's evaluation
// (Section 6) at a reduced, density-preserving scale, plus operation-level
// micro-benchmarks and ablations of the design choices called out in
// DESIGN.md. Each figure benchmark reports the series the paper plots as
// custom metrics (queryIO/op = average buffer-pool misses per query).
//
// Paper-scale runs of the same experiments: cmd/vpbench -paper.
package vpindex_test

import (
	"fmt"
	"math/rand"
	"testing"

	vpindex "repro"
	"repro/internal/bench"
	"repro/internal/core"
	"repro/internal/sfc"
	"repro/internal/workload"
)

// benchScale keeps figure benchmarks to a few seconds each.
func benchScale() bench.Scale { return bench.ScaleFor(2500, 40, 25) }

// reportSetupMetrics runs one setup over a fresh workload and reports its
// metrics on the benchmark.
func runSetup(b *testing.B, s bench.Setup, ds workload.Dataset, sc bench.Scale,
	mut func(*workload.Params)) bench.Metrics {
	b.Helper()
	p := workload.DefaultParams(ds, sc.Objects)
	p.Duration = sc.Duration
	p.NumQueries = sc.Queries
	p.Domain = vpindex.R(0, 0, sc.DomainSide, sc.DomainSide)
	p.SampleSize = sc.Objects
	if mut != nil {
		mut(&p)
	}
	gen, err := workload.NewGenerator(p)
	if err != nil {
		b.Fatal(err)
	}
	m, err := bench.Run(s, gen, sc.Buffer)
	if err != nil {
		b.Fatal(err)
	}
	return m
}

// --- Figure benchmarks ---------------------------------------------------------

func BenchmarkFig07SearchSpaceExpansion(b *testing.B) {
	sc := benchScale()
	for i := 0; i < b.N; i++ {
		points, tab, err := bench.RunFig7(sc, 42)
		if err != nil {
			b.Fatal(err)
		}
		if i == 0 {
			b.Logf("\n%s", tab.Format())
			b.ReportMetric(float64(len(points)), "scatter-points")
		}
	}
}

func BenchmarkFig17TauSweep(b *testing.B) {
	sc := bench.ScaleFor(1500, 25, 20)
	for i := 0; i < b.N; i++ {
		tab, err := bench.RunFig17(workload.Chicago, sc, 42)
		if err != nil {
			b.Fatal(err)
		}
		if i == 0 {
			b.Logf("\n%s", tab.Format())
		}
	}
}

func BenchmarkFig18AnalyzerOverhead(b *testing.B) {
	sc := benchScale()
	for i := 0; i < b.N; i++ {
		tab, err := bench.RunFig18(sc, 42, 3)
		if err != nil {
			b.Fatal(err)
		}
		if i == 0 {
			b.Logf("\n%s", tab.Format())
		}
	}
}

func BenchmarkFig19VaryDataset(b *testing.B) {
	sc := benchScale()
	for _, ds := range workload.Datasets() {
		for _, s := range bench.AllSetups() {
			b.Run(fmt.Sprintf("%s/%s", ds, s), func(b *testing.B) {
				for i := 0; i < b.N; i++ {
					m := runSetup(b, s, ds, sc, nil)
					b.ReportMetric(m.QueryIO, "queryIO/op")
					b.ReportMetric(m.UpdateIO, "updateIO/op")
				}
			})
		}
	}
}

func BenchmarkFig20VaryDataSize(b *testing.B) {
	for _, n := range []int{1000, 2000, 4000} {
		sc := bench.ScaleFor(n, 30, 20)
		for _, s := range bench.AllSetups() {
			b.Run(fmt.Sprintf("n=%d/%s", n, s), func(b *testing.B) {
				for i := 0; i < b.N; i++ {
					m := runSetup(b, s, workload.Chicago, sc, nil)
					b.ReportMetric(m.QueryIO, "queryIO/op")
				}
			})
		}
	}
}

func BenchmarkFig21VaryMaxSpeed(b *testing.B) {
	sc := benchScale()
	for _, speed := range []float64{20, 100, 200} {
		for _, s := range bench.AllSetups() {
			b.Run(fmt.Sprintf("v=%.0f/%s", speed, s), func(b *testing.B) {
				for i := 0; i < b.N; i++ {
					m := runSetup(b, s, workload.Chicago, sc,
						func(p *workload.Params) { p.MaxSpeed = speed })
					b.ReportMetric(m.QueryIO, "queryIO/op")
				}
			})
		}
	}
}

func BenchmarkFig22VaryQueryRadius(b *testing.B) {
	sc := benchScale()
	for _, r := range []float64{100, 500, 1000} {
		for _, s := range bench.AllSetups() {
			b.Run(fmt.Sprintf("r=%.0f/%s", r, s), func(b *testing.B) {
				for i := 0; i < b.N; i++ {
					m := runSetup(b, s, workload.Chicago, sc,
						func(p *workload.Params) { p.QueryRadius = r })
					b.ReportMetric(m.QueryIO, "queryIO/op")
				}
			})
		}
	}
}

func BenchmarkFig23VaryPredictiveTime(b *testing.B) {
	sc := benchScale()
	for _, h := range []float64{20, 60, 120} {
		for _, s := range bench.AllSetups() {
			b.Run(fmt.Sprintf("h=%.0f/%s", h, s), func(b *testing.B) {
				for i := 0; i < b.N; i++ {
					m := runSetup(b, s, workload.Chicago, sc,
						func(p *workload.Params) { p.PredictiveTime = h })
					b.ReportMetric(m.QueryIO, "queryIO/op")
				}
			})
		}
	}
}

func BenchmarkFig24RectPredictiveTime(b *testing.B) {
	sc := benchScale()
	for _, h := range []float64{20, 60, 120} {
		for _, s := range bench.AllSetups() {
			b.Run(fmt.Sprintf("h=%.0f/%s", h, s), func(b *testing.B) {
				for i := 0; i < b.N; i++ {
					m := runSetup(b, s, workload.Chicago, sc,
						func(p *workload.Params) {
							p.PredictiveTime = h
							p.UseRectQueries = true
						})
					b.ReportMetric(m.QueryIO, "queryIO/op")
				}
			})
		}
	}
}

// --- Operation micro-benchmarks -------------------------------------------------

func randomObjects(n int, seed int64) []vpindex.Object {
	rng := rand.New(rand.NewSource(seed))
	objs := make([]vpindex.Object, n)
	for i := range objs {
		speed := 20 + rng.Float64()*80
		if rng.Intn(2) == 0 {
			speed = -speed
		}
		vel := vpindex.V(speed, rng.NormFloat64()*2)
		if i%2 == 0 {
			vel = vpindex.V(rng.NormFloat64()*2, speed)
		}
		objs[i] = vpindex.Object{
			ID:  vpindex.ObjectID(i + 1),
			Pos: vpindex.V(rng.Float64()*100000, rng.Float64()*100000),
			Vel: vel,
			T:   0,
		}
	}
	return objs
}

func benchInsert(b *testing.B, kind vpindex.Kind) {
	objs := randomObjects(b.N, 1)
	idx, err := vpindex.New(vpindex.Options{Kind: kind, BufferPages: 256})
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if err := idx.Insert(objs[i]); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkInsertTPRStar(b *testing.B) { benchInsert(b, vpindex.TPRStar) }
func BenchmarkInsertBx(b *testing.B)      { benchInsert(b, vpindex.Bx) }

func benchQuery(b *testing.B, kind vpindex.Kind, vp bool) {
	objs := randomObjects(20000, 2)
	sample := make([]vpindex.Vec2, len(objs))
	for i, o := range objs {
		sample[i] = o.Vel
	}
	var idx vpindex.Searcher
	if vp {
		v, err := vpindex.NewVP(sample, vpindex.VPOptions{
			Options: vpindex.Options{Kind: kind, BufferPages: 64}, K: 2, Seed: 1,
		})
		if err != nil {
			b.Fatal(err)
		}
		idx = v
	} else {
		v, err := vpindex.New(vpindex.Options{Kind: kind, BufferPages: 64})
		if err != nil {
			b.Fatal(err)
		}
		idx = v
	}
	for _, o := range objs {
		if err := idx.Insert(o); err != nil {
			b.Fatal(err)
		}
	}
	rng := rand.New(rand.NewSource(3))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		c := vpindex.V(rng.Float64()*100000, rng.Float64()*100000)
		if _, err := idx.Search(vpindex.SliceQuery(vpindex.Circle{C: c, R: 500}, 0, 60)); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkQueryTPRStar(b *testing.B)   { benchQuery(b, vpindex.TPRStar, false) }
func BenchmarkQueryTPRStarVP(b *testing.B) { benchQuery(b, vpindex.TPRStar, true) }
func BenchmarkQueryBx(b *testing.B)        { benchQuery(b, vpindex.Bx, false) }
func BenchmarkQueryBxVP(b *testing.B)      { benchQuery(b, vpindex.Bx, true) }

func BenchmarkVelocityAnalyzer10K(b *testing.B) {
	objs := randomObjects(10000, 4)
	sample := make([]vpindex.Vec2, len(objs))
	for i, o := range objs {
		sample[i] = o.Vel
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := core.Analyze(sample, core.AnalyzerConfig{K: 2}); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkHilbertEncode(b *testing.B) {
	h := sfc.MustHilbert(16)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		h.Encode(uint32(i)&0xFFFF, uint32(i*2654435761)&0xFFFF)
	}
}

func BenchmarkHilbertDecompose(b *testing.B) {
	h := sfc.MustHilbert(10)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		x := uint32(i) % 900
		h.DecomposeWindow(x, x/2, x+60, x/2+60)
	}
}

// --- Ablation benches -----------------------------------------------------------

// BenchmarkAblationCurve compares Hilbert against Z-order under the Bx-tree
// (the paper permits either; its configuration uses Hilbert).
func BenchmarkAblationCurve(b *testing.B) {
	sc := benchScale()
	for _, zorder := range []bool{false, true} {
		name := "hilbert"
		if zorder {
			name = "zorder"
		}
		b.Run(name, func(b *testing.B) {
			p := workload.DefaultParams(workload.Chicago, sc.Objects)
			p.Duration = sc.Duration
			p.NumQueries = sc.Queries
			p.Domain = vpindex.R(0, 0, sc.DomainSide, sc.DomainSide)
			for i := 0; i < b.N; i++ {
				gen, err := workload.NewGenerator(p)
				if err != nil {
					b.Fatal(err)
				}
				idx, err := vpindex.New(vpindex.Options{
					Kind: vpindex.Bx, Domain: p.Domain,
					BufferPages: sc.Buffer, UseZOrder: zorder,
				})
				if err != nil {
					b.Fatal(err)
				}
				m, err := bench.RunOn(idx, bench.SetupBx, gen)
				if err != nil {
					b.Fatal(err)
				}
				b.ReportMetric(m.QueryIO, "queryIO/op")
			}
		})
	}
}

// BenchmarkAblationOutlierPartition compares the automatic tau against
// tau=infinity (no outlier partition at all): Section 5.2's design choice.
func BenchmarkAblationOutlierPartition(b *testing.B) {
	sc := benchScale()
	for _, mode := range []string{"auto-tau", "no-outlier-partition"} {
		b.Run(mode, func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				p := workload.DefaultParams(workload.SanFrancisco, sc.Objects)
				p.Duration = sc.Duration
				p.NumQueries = sc.Queries
				p.Domain = vpindex.R(0, 0, sc.DomainSide, sc.DomainSide)
				p.SampleSize = sc.Objects
				gen, err := workload.NewGenerator(p)
				if err != nil {
					b.Fatal(err)
				}
				idx, err := bench.Build(bench.SetupTPRVP, gen, sc.Buffer)
				if err != nil {
					b.Fatal(err)
				}
				if mode == "no-outlier-partition" {
					vp := idx.(*vpindex.VPIndex)
					for pi := 0; pi < vp.NumPartitions()-1; pi++ {
						vp.SetTau(pi, 1e18)
					}
				}
				m, err := bench.RunOn(idx, bench.SetupTPRVP, gen)
				if err != nil {
					b.Fatal(err)
				}
				b.ReportMetric(m.QueryIO, "queryIO/op")
			}
		})
	}
}

// BenchmarkAblationHistogramResolution sweeps the Bx velocity-histogram
// grid (the paper uses 1000x1000; resolution trades enlargement precision
// against CPU).
func BenchmarkAblationHistogramResolution(b *testing.B) {
	sc := benchScale()
	for _, cells := range []int{8, 64, 256} {
		b.Run(fmt.Sprintf("cells=%d", cells), func(b *testing.B) {
			p := workload.DefaultParams(workload.Chicago, sc.Objects)
			p.Duration = sc.Duration
			p.NumQueries = sc.Queries
			p.Domain = vpindex.R(0, 0, sc.DomainSide, sc.DomainSide)
			for i := 0; i < b.N; i++ {
				gen, err := workload.NewGenerator(p)
				if err != nil {
					b.Fatal(err)
				}
				idx, err := vpindex.New(vpindex.Options{
					Kind: vpindex.Bx, Domain: p.Domain,
					BufferPages: sc.Buffer, HistogramCells: cells,
				})
				if err != nil {
					b.Fatal(err)
				}
				m, err := bench.RunOn(idx, bench.SetupBx, gen)
				if err != nil {
					b.Fatal(err)
				}
				b.ReportMetric(m.QueryIO, "queryIO/op")
			}
		})
	}
}

// BenchmarkMovingRangeQueries exercises the third query type end to end
// (the paper's evaluation shows time-slice; the system supports all three).
func BenchmarkMovingRangeQueries(b *testing.B) {
	sc := benchScale()
	for _, s := range []bench.Setup{bench.SetupTPR, bench.SetupTPRVP} {
		b.Run(string(s), func(b *testing.B) {
			p := workload.DefaultParams(workload.Chicago, sc.Objects)
			p.Domain = vpindex.R(0, 0, sc.DomainSide, sc.DomainSide)
			p.SampleSize = sc.Objects
			gen, err := workload.NewGenerator(p)
			if err != nil {
				b.Fatal(err)
			}
			idx, err := bench.Build(s, gen, sc.Buffer)
			if err != nil {
				b.Fatal(err)
			}
			for _, o := range gen.Initial() {
				if err := idx.Insert(o); err != nil {
					b.Fatal(err)
				}
			}
			queries := gen.MovingQueries(200, 30)
			before := idx.Stats()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if _, err := idx.Search(queries[i%len(queries)]); err != nil {
					b.Fatal(err)
				}
			}
			b.StopTimer()
			io := float64(idx.Stats().Reads-before.Reads) / float64(b.N)
			b.ReportMetric(io, "queryIO/op")
		})
	}
}

// BenchmarkKNN measures k-nearest-neighbor search (the query type the
// paper's circular ranges act as a filter step for) across all four index
// configurations.
func BenchmarkKNN(b *testing.B) {
	objs := randomObjects(20000, 8)
	sample := make([]vpindex.Vec2, len(objs))
	for i, o := range objs {
		sample[i] = o.Vel
	}
	type knnIndex interface {
		Insert(vpindex.Object) error
		SearchKNN(vpindex.KNNQuery) ([]vpindex.Neighbor, error)
	}
	builds := []struct {
		name  string
		build func() (knnIndex, error)
	}{
		{"TPR*", func() (knnIndex, error) {
			return vpindex.New(vpindex.Options{Kind: vpindex.TPRStar, BufferPages: 64})
		}},
		{"TPR*(VP)", func() (knnIndex, error) {
			return vpindex.NewVP(sample, vpindex.VPOptions{
				Options: vpindex.Options{Kind: vpindex.TPRStar, BufferPages: 64}, K: 2, Seed: 1})
		}},
		{"Bx", func() (knnIndex, error) {
			return vpindex.New(vpindex.Options{Kind: vpindex.Bx, BufferPages: 64})
		}},
		{"Bx(VP)", func() (knnIndex, error) {
			return vpindex.NewVP(sample, vpindex.VPOptions{
				Options: vpindex.Options{Kind: vpindex.Bx, BufferPages: 64}, K: 2, Seed: 1})
		}},
	}
	for _, bd := range builds {
		b.Run(bd.name, func(b *testing.B) {
			idx, err := bd.build()
			if err != nil {
				b.Fatal(err)
			}
			for _, o := range objs {
				if err := idx.Insert(o); err != nil {
					b.Fatal(err)
				}
			}
			rng := rand.New(rand.NewSource(9))
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				q := vpindex.KNNQuery{
					Center: vpindex.V(rng.Float64()*100000, rng.Float64()*100000),
					K:      10, Now: 0, T: 60,
				}
				if _, err := idx.SearchKNN(q); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}
