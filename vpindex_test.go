package vpindex_test

import (
	"math/rand"
	"sort"
	"testing"

	vpindex "repro"
	"repro/internal/model"
	"repro/internal/workload"
)

func TestNewDefaults(t *testing.T) {
	for _, kind := range []vpindex.Kind{vpindex.TPRStar, vpindex.Bx} {
		idx, err := vpindex.New(vpindex.Options{Kind: kind})
		if err != nil {
			t.Fatal(err)
		}
		if idx.Len() != 0 {
			t.Fatal("new index not empty")
		}
		o := vpindex.Object{ID: 1, Pos: vpindex.V(100, 100), Vel: vpindex.V(5, 5), T: 0}
		if err := idx.Insert(o); err != nil {
			t.Fatal(err)
		}
		ids, err := idx.Search(vpindex.SliceQuery(vpindex.Circle{C: vpindex.V(150, 150), R: 100}, 0, 10))
		if err != nil {
			t.Fatal(err)
		}
		if len(ids) != 1 || ids[0] != 1 {
			t.Fatalf("%v: ids = %v", kind, ids)
		}
		if err := idx.Delete(o); err != nil {
			t.Fatal(err)
		}
		if idx.Len() != 0 {
			t.Fatal("delete did not shrink index")
		}
	}
}

func TestKindString(t *testing.T) {
	if vpindex.TPRStar.String() != "tpr*" || vpindex.Bx.String() != "bx" {
		t.Fatal("kind names")
	}
}

func TestQueryBuilders(t *testing.T) {
	c := vpindex.Circle{C: vpindex.V(10, 20), R: 5}
	q := vpindex.SliceQuery(c, 1, 2)
	if q.Kind != vpindex.TimeSlice || !q.IsCircle() || q.Now != 1 || q.T0 != 2 {
		t.Fatalf("slice: %+v", q)
	}
	r := vpindex.R(0, 0, 10, 10)
	q = vpindex.RectSliceQuery(r, 0, 5)
	if q.IsCircle() || q.Rect != r {
		t.Fatalf("rect slice: %+v", q)
	}
	q = vpindex.IntervalQuery(r, 0, 5, 9)
	if q.Kind != vpindex.TimeInterval || q.T1 != 9 {
		t.Fatalf("interval: %+v", q)
	}
	q = vpindex.MovingQuery(r, vpindex.V(1, 2), 0, 3, 8)
	if q.Kind != vpindex.MovingRange || q.Vel != vpindex.V(1, 2) {
		t.Fatalf("moving: %+v", q)
	}
	for _, q := range []vpindex.RangeQuery{
		vpindex.SliceQuery(c, 1, 2),
		vpindex.RectSliceQuery(r, 0, 5),
		vpindex.IntervalQuery(r, 0, 5, 9),
		vpindex.MovingQuery(r, vpindex.V(1, 2), 0, 3, 8),
	} {
		if err := q.Validate(); err != nil {
			t.Fatal(err)
		}
	}
}

func TestNewVPRequiresSample(t *testing.T) {
	if _, err := vpindex.NewVP(nil, vpindex.VPOptions{}); err == nil {
		t.Fatal("empty sample accepted")
	}
	if _, err := vpindex.NewVP([]vpindex.Vec2{{X: 1}}, vpindex.VPOptions{K: 2}); err == nil {
		t.Fatal("sample smaller than k accepted")
	}
}

func TestVPAnalysisExposed(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	sample := make([]vpindex.Vec2, 1000)
	for i := range sample {
		s := 20 + rng.Float64()*50
		if i%2 == 0 {
			sample[i] = vpindex.V(s, rng.NormFloat64())
		} else {
			sample[i] = vpindex.V(rng.NormFloat64(), -s)
		}
	}
	idx, err := vpindex.NewVP(sample, vpindex.VPOptions{
		Options: vpindex.Options{Kind: vpindex.Bx},
		K:       2,
	})
	if err != nil {
		t.Fatal(err)
	}
	an := idx.Analysis()
	if an.NumVelocityFrames() != 2 || an.SampleSize != 1000 {
		t.Fatalf("analysis: %+v", an)
	}
	if idx.NumPartitions() != 3 {
		t.Fatalf("partitions: %d", idx.NumPartitions())
	}
	if idx.Name() != "bx(vp)" {
		t.Fatalf("name: %q", idx.Name())
	}
}

func TestStatsProgress(t *testing.T) {
	idx, err := vpindex.New(vpindex.Options{Kind: vpindex.Bx, BufferPages: 4})
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(3))
	for i := 0; i < 2000; i++ {
		o := vpindex.Object{
			ID:  vpindex.ObjectID(i + 1),
			Pos: vpindex.V(rng.Float64()*100000, rng.Float64()*100000),
			Vel: vpindex.V(rng.Float64()*100-50, rng.Float64()*100-50),
			T:   0,
		}
		if err := idx.Insert(o); err != nil {
			t.Fatal(err)
		}
	}
	st := idx.Stats()
	if st.Reads == 0 || st.Writes == 0 {
		t.Fatalf("tiny buffer should force I/O: %+v", st)
	}
	if st.Total() != st.Reads+st.Writes {
		t.Fatal("Total() arithmetic")
	}
}

// TestEndToEndOracleAllDatasetsAllSetups is the repository's strongest
// integration test: for every dataset and every index configuration,
// replay a full benchmark workload (load + updates interleaved with
// queries) and require bit-identical result sets against the brute-force
// oracle at every query.
func TestEndToEndOracleAllDatasetsAllSetups(t *testing.T) {
	if testing.Short() {
		t.Skip("short mode")
	}
	type setup struct {
		name string
		kind vpindex.Kind
		vp   bool
	}
	setups := []setup{
		{"bx", vpindex.Bx, false},
		{"bx-vp", vpindex.Bx, true},
		{"tpr", vpindex.TPRStar, false},
		{"tpr-vp", vpindex.TPRStar, true},
	}
	for _, ds := range workload.Datasets() {
		for _, su := range setups {
			t.Run(string(ds)+"/"+su.name, func(t *testing.T) {
				p := workload.DefaultParams(ds, 900)
				p.Domain = vpindex.R(0, 0, 12000, 12000)
				p.Duration = 30
				p.NumQueries = 15
				p.SampleSize = 900
				gen, err := workload.NewGenerator(p)
				if err != nil {
					t.Fatal(err)
				}
				opts := vpindex.Options{Kind: su.kind, Domain: p.Domain, BufferPages: 20}
				var idx vpindex.Searcher
				if su.vp {
					v, err := vpindex.NewVP(gen.VelocitySample(900), vpindex.VPOptions{
						Options: opts, K: 2, Seed: 5, TauRefreshInterval: 400,
					})
					if err != nil {
						t.Fatal(err)
					}
					idx = v
				} else {
					v, err := vpindex.New(opts)
					if err != nil {
						t.Fatal(err)
					}
					idx = v
				}
				oracle := model.NewBruteForce()
				for _, o := range gen.Initial() {
					if err := idx.Insert(o); err != nil {
						t.Fatal(err)
					}
					_ = oracle.Insert(o)
				}
				queries := gen.Queries(p.NumQueries)
				// Add the other two query kinds at matching issue times.
				queries = append(queries, gen.IntervalQueries(5, 15)...)
				queries = append(queries, gen.MovingQueries(5, 15)...)
				sort.Slice(queries, func(a, b int) bool { return queries[a].Now < queries[b].Now })
				qi := 0
				check := func(now float64) {
					for qi < len(queries) && queries[qi].Now <= now {
						q := queries[qi]
						qi++
						got, err := idx.Search(q)
						if err != nil {
							t.Fatal(err)
						}
						want, _ := oracle.Search(q)
						sort.Slice(got, func(a, b int) bool { return got[a] < got[b] })
						sort.Slice(want, func(a, b int) bool { return want[a] < want[b] })
						if len(got) != len(want) {
							t.Fatalf("query at t=%g (%v): %d vs %d results",
								q.Now, q.Kind, len(got), len(want))
						}
						for i := range got {
							if got[i] != want[i] {
								t.Fatalf("query at t=%g: result %d differs", q.Now, i)
							}
						}
					}
				}
				for {
					ev, ok := gen.NextUpdate()
					if !ok {
						break
					}
					check(ev.T)
					if err := idx.Update(ev.Old, ev.New); err != nil {
						t.Fatalf("update at t=%g: %v", ev.T, err)
					}
					if err := oracle.Update(ev.Old, ev.New); err != nil {
						t.Fatal(err)
					}
				}
				check(p.Duration + 1)
				if idx.Len() != oracle.Len() {
					t.Fatalf("len %d vs %d", idx.Len(), oracle.Len())
				}
			})
		}
	}
}
